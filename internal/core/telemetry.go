package core

import (
	"time"

	"netalytics/internal/monitor"
	"netalytics/internal/mq"
	"netalytics/internal/telemetry"
)

// Telemetry is one coherent snapshot of a session's pipeline health, layer by
// layer: frames pumped out of the taps, monitor counters, per-topic
// aggregation stats, stream-engine backlog, result-sink drops, and the
// sampled per-stage latency digests of Figs. 13-14. Assembled from live layer
// pointers, so it stays accurate even after Stop retires the session's
// registry series.
type Telemetry struct {
	SessionID string    `json:"session_id"`
	TS        time.Time `json:"ts"`

	// Capture/NFV layer.
	Packets    uint64 `json:"packets"`     // frames delivered to the session's monitors
	PumpFrames uint64 `json:"pump_frames"` // frames pumped from taps (= Packets, per instance)
	TapDrops   uint64 `json:"tap_drops"`   // RX overruns at the mirror taps
	TapDepth   int    `json:"tap_depth"`   // current tap backlog across instances

	// Monitor layer: aggregated across the session's instances.
	Monitor monitor.Stats `json:"monitor"`

	// Aggregation layer: per-topic counters and occupancy.
	Topics map[string]mq.TopicStats `json:"topics"`

	// Stream layer: tuples in flight inside the processing topologies —
	// sent between tasks or executing, not yet fully processed.
	StreamQueueLag int `json:"stream_queue_lag"`

	// Result sink.
	ResultDrops uint64 `json:"result_drops"`

	// Stage-latency digests in pipeline order (capture→parse, parse→mq,
	// mq→stream, stream→sink, end-to-end). Always all five stages.
	Stages []telemetry.StageSummary `json:"stages"`

	// Registry is the engine-wide metric snapshot at the same instant.
	Registry []telemetry.Point `json:"registry,omitempty"`
}

// Stage returns the named stage digest, or a zero summary when absent.
func (t Telemetry) Stage(name string) telemetry.StageSummary {
	for _, st := range t.Stages {
		if st.Stage == name {
			return st
		}
	}
	return telemetry.StageSummary{Stage: name}
}

// Telemetry assembles the session's pipeline snapshot. Safe to call while the
// session runs and after it stops.
func (s *Session) Telemetry() Telemetry {
	t := Telemetry{
		SessionID:   s.ID,
		TS:          time.Now(),
		Packets:     s.Packets(),
		Monitor:     s.MonitorStats(),
		Topics:      make(map[string]mq.TopicStats, len(s.topics)),
		ResultDrops: s.ResultDrops(),
		Stages:      s.tracer.StageSummaries(),
	}
	s.failMu.Lock()
	if len(s.sharedSubs) > 0 {
		// Shared-tap mode: tap counters of the shared monitors this session
		// subscribes to (host-level — the taps carry all subscribers' flows).
		for _, ss := range s.sharedSubs {
			if in := ss.mon.inst.Load(); in != nil {
				t.PumpFrames += in.Packets()
				t.TapDrops += in.TapDrops()
				t.TapDepth += in.TapDepth()
			}
		}
	}
	for _, in := range s.instances {
		t.PumpFrames += in.Packets()
		t.TapDrops += in.TapDrops()
		t.TapDepth += in.TapDepth()
	}
	final := s.finalTopics
	s.failMu.Unlock()
	for _, topic := range s.topics {
		if final != nil {
			// Stopped: the cluster has forgotten the topics; report the stats
			// frozen at teardown.
			t.Topics[topic] = final[topic]
			continue
		}
		t.Topics[topic] = s.engine.mq.Stats(topic)
	}
	for _, ex := range s.executors {
		t.StreamQueueLag += ex.QueueLag()
	}
	if s.engine != nil {
		t.Registry = s.engine.cfg.Metrics.Snapshot()
	}
	return t
}
