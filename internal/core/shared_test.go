package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"netalytics/internal/packet"
	"netalytics/internal/proto"
	"netalytics/internal/topology"
	"netalytics/internal/tuple"
)

// sharedTestEngine builds an engine over an unrandomized k=4 fat tree (host
// resources unmodeled, so placement is fully deterministic) with the
// shared-tap control plane on or off.
func sharedTestEngine(t *testing.T, shared bool) *Engine {
	t.Helper()
	e := NewEngine(topology.MustNew(4), Config{
		TickInterval: 20 * time.Millisecond,
		SharedTaps:   shared,
	})
	t.Cleanup(e.Close)
	return e
}

// rackServers picks n hosts under n distinct ToR switches, plus a client in
// yet another rack.
func rackServers(t *testing.T, e *Engine, n int) (servers []*topology.Host, client *topology.Host) {
	t.Helper()
	seen := map[topology.NodeID]bool{}
	for _, h := range e.Topology().Hosts() {
		if !seen[h.Edge] {
			seen[h.Edge] = true
			if len(servers) < n {
				servers = append(servers, h)
			} else {
				return servers, h
			}
		}
	}
	t.Fatalf("topology has too few racks for %d servers", n)
	return nil, nil
}

// injectGets drives n crafted HTTP GETs from client to server:port, one flow
// per request (distinct source ports) and urls cycling /u0../u3. urlBase
// offsets the url space so separate bursts are distinguishable.
func injectGets(t *testing.T, e *Engine, client, server *topology.Host, port uint16, n, urlBase int) {
	t.Helper()
	var b packet.Builder
	for i := 0; i < n; i++ {
		raw := b.TCP(packet.TCPSpec{
			Src: client.Addr, Dst: server.Addr,
			SrcPort: uint16(20000 + urlBase + i), DstPort: port,
			Flags:   packet.TCPFlagACK,
			Payload: proto.BuildHTTPGet(fmt.Sprintf("/u%d", urlBase+i%4), server.Name),
		})
		if err := e.Network().Inject(raw); err != nil {
			t.Fatalf("Inject: %v", err)
		}
	}
}

func collectN(t *testing.T, s *Session, n int, timeout time.Duration) []tuple.Tuple {
	t.Helper()
	var out []tuple.Tuple
	deadline := time.After(timeout)
	for len(out) < n {
		select {
		case tu, ok := <-s.Results():
			if !ok {
				t.Fatalf("session %s results closed with %d/%d tuples", s.ID, len(out), n)
			}
			out = append(out, tu)
		case <-deadline:
			t.Fatalf("session %s timed out with %d/%d tuples (monitor %+v)", s.ID, len(out), n, s.MonitorStats())
		}
	}
	return out
}

// tupleKey is every result field that must be bit-equivalent between the
// legacy and shared control planes. TS (wall clock) and Trace (sampled
// latency records) are run-specific and excluded.
func tupleKey(tu tuple.Tuple) string {
	return fmt.Sprintf("%d|%s|%s|%s|%d|%d|%s|%v",
		tu.FlowID, tu.Parser, tu.SrcIP, tu.DstIP, tu.SrcPort, tu.DstPort, tu.Key, tu.Val)
}

func sortedKeys(tuples []tuple.Tuple) []string {
	keys := make([]string, len(tuples))
	for i, tu := range tuples {
		keys[i] = tupleKey(tu)
	}
	sort.Strings(keys)
	return keys
}

// TestSharedTapsParity feeds identical traffic through a legacy and a
// shared-tap engine running the same overlapping query set, and requires
// every query's results to be bit-equivalent across the two control planes —
// demand merging must be invisible to query semantics.
func TestSharedTapsParity(t *testing.T) {
	const perServer = 20
	legacy := sharedTestEngine(t, false)
	sharedE := sharedTestEngine(t, true)

	run := func(e *Engine) [][]tuple.Tuple {
		servers, client := rackServers(t, e, 3)
		// Two queries per server: full overlap within each pair.
		var sessions []*Session
		for _, srv := range servers {
			for rep := 0; rep < 2; rep++ {
				s, err := e.Submit(fmt.Sprintf("PARSE http_get FROM * TO %s:80 PROCESS (passthrough)", srv.Name))
				if err != nil {
					t.Fatalf("Submit: %v", err)
				}
				sessions = append(sessions, s)
			}
		}
		for si, srv := range servers {
			injectGets(t, e, client, srv, 80, perServer, si*1000)
		}
		out := make([][]tuple.Tuple, len(sessions))
		for i, s := range sessions {
			out[i] = collectN(t, s, perServer, 10*time.Second)
		}
		// Grace period: a duplicate or cross-talk tuple arriving late must
		// fail the count check, not slip by unobserved.
		time.Sleep(150 * time.Millisecond)
		for i, s := range sessions {
			select {
			case tu := <-s.Results():
				t.Fatalf("session %d got extra tuple %+v", i, tu)
			default:
			}
			s.Stop()
		}
		return out
	}

	legacyRes := run(legacy)
	sharedRes := run(sharedE)

	if legacy.SharedMonitorCount() != 0 {
		t.Errorf("legacy engine reports %d shared monitors", legacy.SharedMonitorCount())
	}
	for i := range legacyRes {
		lk, sk := sortedKeys(legacyRes[i]), sortedKeys(sharedRes[i])
		for j := range lk {
			if lk[j] != sk[j] {
				t.Fatalf("query %d tuple %d differs:\n legacy %s\n shared %s", i, j, lk[j], sk[j])
			}
		}
	}
}

// TestSharedTapsMergeRatio is the headline efficiency claim: 64 concurrent
// queries with 50%% overlap must cost the shared control plane at most 0.6×
// the legacy plane's mirror rules and at most 0.6× its parsed frames.
func TestSharedTapsMergeRatio(t *testing.T) {
	const (
		overlapQueries  = 32 // all demand the same (server, port)
		distinctQueries = 32 // each demands its own port
		framesPerDemand = 2
	)

	measure := func(shared bool) (rules int, received uint64, monitors int) {
		e := sharedTestEngine(t, shared)
		servers, client := rackServers(t, e, 2)
		overlapSrv, distinctSrv := servers[0], servers[1]

		var sessions []*Session
		for i := 0; i < overlapQueries; i++ {
			s, err := e.Submit(fmt.Sprintf("PARSE http_get FROM * TO %s:80 PROCESS (passthrough)", overlapSrv.Name))
			if err != nil {
				t.Fatalf("Submit overlap %d: %v", i, err)
			}
			sessions = append(sessions, s)
		}
		for i := 0; i < distinctQueries; i++ {
			s, err := e.Submit(fmt.Sprintf("PARSE http_get FROM * TO %s:%d PROCESS (passthrough)", distinctSrv.Name, 8000+i))
			if err != nil {
				t.Fatalf("Submit distinct %d: %v", i, err)
			}
			sessions = append(sessions, s)
		}

		rules = e.Controller().RuleCount()
		injectGets(t, e, client, overlapSrv, 80, framesPerDemand, 0)
		for i := 0; i < distinctQueries; i++ {
			injectGets(t, e, client, distinctSrv, uint16(8000+i), framesPerDemand, 100+i)
		}

		// Wait for the datapath to quiesce: everything mirrored has been
		// pumped and parsed (received stable and taps drained). Count over
		// live instances, not sessions — in shared mode many sessions report
		// the same monitor, and the claim is about frames actually parsed.
		total := func() uint64 {
			var sum uint64
			for _, in := range e.Orchestrator().All() {
				sum += in.Monitor.Stats().Received
			}
			return sum
		}
		prev := uint64(0)
		for i := 0; i < 200; i++ {
			cur := total()
			if cur > 0 && cur == prev && e.Network().TapQueueDepth() == 0 {
				break
			}
			prev = cur
			time.Sleep(20 * time.Millisecond)
		}
		received = total()
		monitors = e.Orchestrator().InstanceCount()
		for _, s := range sessions {
			s.Stop()
		}
		return rules, received, monitors
	}

	legacyRules, legacyReceived, legacyMonitors := measure(false)
	sharedRules, sharedReceived, sharedMonitors := measure(true)

	t.Logf("rules: legacy=%d shared=%d (%.2fx)  parsed frames: legacy=%d shared=%d (%.2fx)  monitors: legacy=%d shared=%d",
		legacyRules, sharedRules, float64(sharedRules)/float64(legacyRules),
		legacyReceived, sharedReceived, float64(sharedReceived)/float64(legacyReceived),
		legacyMonitors, sharedMonitors)
	if float64(sharedRules) > 0.6*float64(legacyRules) {
		t.Errorf("shared rules %d > 0.6 × legacy rules %d", sharedRules, legacyRules)
	}
	if float64(sharedReceived) > 0.6*float64(legacyReceived) {
		t.Errorf("shared parsed frames %d > 0.6 × legacy %d", sharedReceived, legacyReceived)
	}
	if sharedMonitors >= legacyMonitors {
		t.Errorf("shared monitors %d not below legacy %d", sharedMonitors, legacyMonitors)
	}
}

// TestSharedTapsFailover crashes a shared monitor carrying two subscribed
// queries mid-run: the registry must relaunch it on the same host, re-install
// every subscriber's mirror rules, and both queries must keep producing.
func TestSharedTapsFailover(t *testing.T) {
	const burst = 20
	e := sharedTestEngine(t, true)
	servers, client := rackServers(t, e, 1)
	srv := servers[0]

	q := fmt.Sprintf("PARSE http_get FROM * TO %s:80 PROCESS (passthrough)", srv.Name)
	s1, err := e.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := e.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.SharedMonitorCount(); got != 1 {
		t.Fatalf("shared monitors = %d, want 1 (merged)", got)
	}
	rulesBefore := e.Controller().RuleCount()

	injectGets(t, e, client, srv, 80, burst, 0)
	collectN(t, s1, burst, 10*time.Second)
	collectN(t, s2, burst, 10*time.Second)

	if !e.Orchestrator().CrashOne(0) {
		t.Fatal("CrashOne found no live instance")
	}
	if got := e.SharedMonitorCount(); got != 1 {
		t.Fatalf("shared monitors after failover = %d, want 1", got)
	}
	if got := e.Controller().RuleCount(); got != rulesBefore {
		t.Fatalf("rule count after failover = %d, want %d (all subscribers re-installed)", got, rulesBefore)
	}

	injectGets(t, e, client, srv, 80, burst, 5000)
	collectN(t, s1, burst, 10*time.Second)
	collectN(t, s2, burst, 10*time.Second)

	s1.Stop()
	if got := e.SharedMonitorCount(); got != 1 {
		t.Errorf("shared monitor retired while a subscriber remains")
	}
	s2.Stop()
	if got := e.SharedMonitorCount(); got != 0 {
		t.Errorf("shared monitors after last unsubscribe = %d, want 0", got)
	}
	if got := e.Controller().RuleCount(); got != 0 {
		t.Errorf("rules after both queries stopped = %d, want 0", got)
	}
}

// TestSharedTapsChurnNoLeaks runs random arrive/leave churn over a pool of
// overlapping queries with live traffic (run under -race in CI's multiquery
// job) and asserts the control plane leaks nothing: no rules, taps, monitor
// instances, topics or telemetry series survive beyond the baseline.
func TestSharedTapsChurnNoLeaks(t *testing.T) {
	e := sharedTestEngine(t, true)
	servers, client := rackServers(t, e, 3)

	var pool []string
	for _, srv := range servers {
		pool = append(pool, fmt.Sprintf("PARSE http_get FROM * TO %s:80 PROCESS (passthrough)", srv.Name))
		pool = append(pool, fmt.Sprintf("PARSE http_get FROM * TO %s:81 PROCESS (passthrough)", srv.Name))
	}

	// Baseline after one full submit+stop warmup cycle: lazily-created
	// engine-wide series (controller gauges, shared-plane counters) exist,
	// per-session state is gone. Per-switch flow-table gauges are structural
	// (bounded by the topology, created on first touch, never per-query), so
	// force every table into existence before measuring.
	topo := e.Topology()
	for _, sws := range [][]*topology.Switch{topo.EdgeSwitches(), topo.AggSwitches(), topo.CoreSwitches()} {
		for _, sw := range sws {
			e.Controller().Table(sw.ID)
		}
	}
	warm, err := e.Submit(pool[0])
	if err != nil {
		t.Fatal(err)
	}
	warm.Stop()
	baseSeries := e.Metrics().Len()
	basePoints := map[string]bool{}
	for _, p := range e.Metrics().Snapshot() {
		basePoints[fmt.Sprintf("%s%v", p.Name, p.Labels)] = true
	}
	baseTopics := len(e.Aggregation().Topics())
	if got := e.Network().TapCount(); got != 0 {
		t.Fatalf("taps after warmup = %d, want 0", got)
	}

	rng := rand.New(rand.NewSource(11))
	live := map[*Session]bool{}
	for round := 0; round < 60; round++ {
		if len(live) < 6 && (len(live) == 0 || rng.Intn(2) == 0) {
			s, err := e.Submit(pool[rng.Intn(len(pool))])
			if err != nil {
				t.Fatalf("round %d Submit: %v", round, err)
			}
			live[s] = true
		} else {
			for s := range live {
				delete(live, s)
				s.Stop()
				break
			}
		}
		srv := servers[rng.Intn(len(servers))]
		injectGets(t, e, client, srv, uint16(80+rng.Intn(2)), 4, round*10)
	}
	for s := range live {
		s.Stop()
	}

	if got := e.Controller().RuleCount(); got != 0 {
		t.Errorf("leaked mirror rules: %d", got)
	}
	if got := e.SharedMonitorCount(); got != 0 {
		t.Errorf("leaked shared monitors: %d", got)
	}
	if got := e.Orchestrator().InstanceCount(); got != 0 {
		t.Errorf("leaked NFV instances: %d", got)
	}
	if got := e.Network().TapCount(); got != 0 {
		t.Errorf("leaked taps: %d", got)
	}
	if got := len(e.Aggregation().Topics()); got != baseTopics {
		t.Errorf("leaked topics: %d, baseline %d (%v)", got, baseTopics, e.Aggregation().Topics())
	}
	if got := e.Metrics().Len(); got != baseSeries {
		var leaked []string
		for _, p := range e.Metrics().Snapshot() {
			if key := fmt.Sprintf("%s%v", p.Name, p.Labels); !basePoints[key] {
				leaked = append(leaked, key)
			}
		}
		t.Errorf("leaked telemetry series: %d, baseline %d: %v", got, baseSeries, leaked)
	}
}
