package core

import (
	"math"
	"sync"
	"sync/atomic"

	"netalytics/internal/monitor"
	"netalytics/internal/nfv"
	"netalytics/internal/placement"
	"netalytics/internal/sdn"
	"netalytics/internal/telemetry"
	"netalytics/internal/topology"
)

// sharedOwner is the synthetic query ID shared monitor instances run under in
// the NFV orchestrator. It never collides with session IDs (those are q<N>),
// so crash dispatch can route shared-instance failures to the registry instead
// of a session, and StopQuery(sessionID) never reclaims a shared monitor.
const sharedOwner = "_shared"

// sharedMon is one host's shared monitor: a single NFV instance running the
// union of its subscribers' parser sets, delivering every parsed batch to a
// demux that fans tuples out per subscriber. The instance pointer is atomic
// because failover swaps it while the demux rate hook (called on subscriber
// paths without the registry lock) needs the current monitor.
type sharedMon struct {
	host  *topology.Host
	inst  atomic.Pointer[nfv.Instance]
	demux *monitor.Demux

	// counter accumulates pumped frames across failover relaunches; sessions
	// snapshot it at attach and report deltas.
	counter atomic.Uint64
	// maxRate mirrors the demux's max subscriber rate (float bits) so a
	// relaunched monitor resumes at the rate the hook last applied.
	maxRate atomic.Uint64

	// factoryNames/factories record every parser ever added, in order, so a
	// failover relaunch starts with the full set (guarded by sharedTaps.mu).
	factoryNames map[string]bool
	factories    []monitor.Factory
	retired      bool
}

// sharedSub is one session's attachment to one shared monitor.
type sharedSub struct {
	mon      *sharedMon
	sub      *monitor.DemuxSub
	baseline uint64 // mon.counter at attach, for per-session Packets deltas
}

// sharedTaps is the engine's shared-monitor registry (Config.SharedTaps): at
// most one monitor NF per host, demand-merged across every query whose flows
// a covering planner lands there. Sessions acquire subscriptions instead of
// launching instances; the last subscriber leaving a host retires its monitor.
type sharedTaps struct {
	e      *Engine
	fanout *telemetry.Counter // demux_fanout: tuples delivered across all subs

	mu       sync.Mutex
	mons     map[topology.NodeID]*sharedMon
	restarts *telemetry.Counter // nfv_restarts{session=_shared}
}

func newSharedTaps(e *Engine) *sharedTaps {
	return &sharedTaps{
		e:        e,
		fanout:   e.cfg.Metrics.Counter("demux_fanout"),
		mons:     make(map[topology.NodeID]*sharedMon),
		restarts: e.cfg.Metrics.Counter("nfv_restarts", telemetry.L("session", sharedOwner)),
	}
}

// existing snapshots the live shared monitors as placement inputs for the
// incremental (reuse-first) planner, plus the aligned host list.
func (r *sharedTaps) existing() ([]*placement.ExistingMonitor, []*topology.Host) {
	r.mu.Lock()
	defer r.mu.Unlock()
	mons := make([]*placement.ExistingMonitor, 0, len(r.mons))
	hosts := make([]*topology.Host, 0, len(r.mons))
	for _, m := range r.mons {
		mons = append(mons, &placement.ExistingMonitor{Host: m.host})
		hosts = append(hosts, m.host)
	}
	return mons, hosts
}

// MonitorCount returns the number of live shared monitor instances.
func (r *sharedTaps) MonitorCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.mons)
}

// acquire attaches a session to the host's shared monitor, launching one if
// the host has none and growing the parser set of an existing one. The demux
// subscription filters by the session's matches and samples at rate; sink
// receives the admitted tuples.
func (r *sharedTaps) acquire(s *Session, host *topology.Host, matches []sdn.Match,
	factories []monitor.Factory, parserNames []string, sink monitor.Sink, rate float64) (*sharedSub, error) {

	e := r.e
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.mons[host.ID]
	if m == nil {
		m = &sharedMon{
			host:         host,
			factoryNames: make(map[string]bool),
		}
		m.demux = monitor.NewDemux(r.fanout)
		// The hook runs on subscriber attach/detach/re-rate paths under the
		// demux lock only; it reads the instance pointer atomically so it
		// stays deadlock-free against this registry lock and correct across
		// failover swaps.
		mon := m
		m.demux.SetRateHook(func(max float64) {
			mon.maxRate.Store(math.Float64bits(max))
			if in := mon.inst.Load(); in != nil {
				in.Monitor.SetSampleRate(max)
			}
		})
		m.addFactories(factories, parserNames)
		in, err := e.nfv.Launch(sharedOwner, r.specFor(m))
		if err != nil {
			return nil, err
		}
		m.inst.Store(in)
		r.mons[host.ID] = m
		e.cfg.Metrics.GaugeFunc("monitor_subscribers",
			func() float64 { return float64(mon.demux.Len()) },
			telemetry.L("shared_host", host.Name))
	} else {
		if err := m.inst.Load().Monitor.AddParsers(factories...); err != nil {
			return nil, err
		}
		m.addFactories(factories, parserNames)
	}
	sub := m.demux.Subscribe(s.ID, parserNames, matches, sink, rate)
	return &sharedSub{mon: m, sub: sub, baseline: m.counter.Load()}, nil
}

func (m *sharedMon) addFactories(factories []monitor.Factory, names []string) {
	for i, f := range factories {
		if !m.factoryNames[names[i]] {
			m.factoryNames[names[i]] = true
			m.factories = append(m.factories, f)
		}
	}
}

// specFor builds the launch (and relaunch) spec for a shared monitor. Caller
// holds r.mu. Instance metrics carry a shared_host label — not a session
// label — so session teardown never drops them and monitor retirement can.
func (r *sharedTaps) specFor(m *sharedMon) nfv.Spec {
	e := r.e
	label := telemetry.L("shared_host", m.host.Name)
	return nfv.Spec{
		Host: m.host,
		Config: monitor.Config{
			Parsers:          append([]monitor.Factory(nil), m.factories...),
			Collectors:       e.cfg.IngestShards,
			WorkSteal:        e.cfg.IngestShards > 1,
			WorkersPerParser: e.cfg.MonitorWorkers,
			Sink:             m.demux,
			SampleRate:       math.Float64frombits(m.maxRate.Load()),
			Metrics:          e.cfg.Metrics,
			MetricLabels:     []telemetry.Label{label},
		},
		Counter:      &m.counter,
		Metrics:      e.cfg.Metrics,
		MetricLabels: []telemetry.Label{label},
	}
}

// detach drops one session's subscription. The last subscriber leaving a
// host stops its monitor (tap closed, pump drained, parsers flushed) and
// retires its telemetry series.
func (r *sharedTaps) detach(sub *sharedSub) {
	m := sub.mon
	r.mu.Lock()
	m.demux.Unsubscribe(sub.sub)
	var stop *nfv.Instance
	if m.demux.Len() == 0 && !m.retired {
		m.retired = true
		delete(r.mons, m.host.ID)
		stop = m.inst.Load()
	}
	r.mu.Unlock()
	if stop != nil {
		r.e.nfv.StopInstance(stop)
		r.e.cfg.Metrics.DropLabeled("shared_host", m.host.Name)
	}
}

// handleCrash is the shared-monitor failover path, dispatched by the engine's
// crash callback for instances owned by sharedOwner. The orchestrator has
// already torn the dead instance down; the registry relaunches on the same
// host with the full accumulated parser set, the same demux sink and the same
// cumulative frame counter, then re-installs every subscribed query's mirror
// rules pointing at the host — fresh rule IDs, same owners and sampling.
func (r *sharedTaps) handleCrash(dead *nfv.Instance) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var m *sharedMon
	for _, have := range r.mons {
		if have.inst.Load() == dead {
			m = have
			break
		}
	}
	if m == nil {
		return // already retired, or a stale crash for a replaced instance
	}
	in, err := r.e.nfv.Launch(sharedOwner, r.specFor(m))
	if err != nil {
		return // relaunch cannot fail on a spec the original launch accepted
	}
	m.inst.Store(in)
	r.e.ctrl.ReinstallTapRules(m.host.ID)
	r.restarts.Add(1)
}
