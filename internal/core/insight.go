package core

import (
	"errors"
	"fmt"
	"net/netip"
	"strings"

	"netalytics/internal/query"
	"netalytics/internal/telemetry"
	"netalytics/internal/topology"
)

// Insight-tier errors.
var (
	ErrNoInsight = errors.New("core: insight tier not enabled (Config.Insight)")
	ErrNoService = errors.New("core: no services listening on the network")
)

// svcInfo is the observation layer's view of one discovered service.
type svcInfo struct {
	host *topology.Host
	port uint16
	tier string
}

// tierOf maps a well-known port to an application tier name.
func tierOf(port uint16) string {
	switch port {
	case 3306:
		return "db"
	case 11211:
		return "cache"
	case 80, 8080:
		return "web"
	default:
		return fmt.Sprintf("port%d", port)
	}
}

// ObserveServices makes the insight tier self-sufficient: it discovers every
// listening service on the virtual network and submits the standing
// observation queries that feed the tier — zero hand-written queries. Two
// sessions are launched:
//
//   - a connection-time query over every service, aggregated per service
//     (rolling mean latency, keyed "ip:port") and per host pair (rolling
//     connection counts, keyed "src->dst", which also teach the service
//     graph who calls whom);
//   - a URL-labeled connection-time query over the web-tier services, so
//     per-page response times become host-labeled histogram series.
//
// Observer goroutines fold the result streams into registry series
// (insight_svc_latency_ns, insight_conn_rate, insight_url_latency_ns) the
// tier's feeder then samples like any other metric. Call it after the
// application servers are listening; call StopObservation (or Close) to tear
// the sessions down, which also retires the observer series.
func (e *Engine) ObserveServices() error {
	if e.insight == nil {
		return ErrNoInsight
	}
	services := e.net.Services()
	if len(services) == 0 {
		return ErrNoService
	}

	index := make(map[string]svcInfo, len(services))
	to := make([]query.Address, 0, len(services))
	var webTo []query.Address
	for _, svc := range services {
		info := svcInfo{host: svc.Host, port: svc.Port, tier: tierOf(svc.Port)}
		index[fmt.Sprintf("%s:%d", svc.Host.Addr, svc.Port)] = info
		addr := query.Address{Host: svc.Host.Name, Port: svc.Port}
		to = append(to, addr)
		if info.tier == "web" {
			webTo = append(webTo, addr)
		}
	}

	connQ := &query.Query{
		Parsers: []string{"tcp_conn_time"},
		From:    []query.Address{{Any: true}},
		To:      to,
		Processors: []query.ProcessorSpec{
			// Per-service mean connection time per window. Rolling, so each
			// emitted value covers one window — a cumulative mean would
			// dilute latency shifts toward invisibility.
			{Name: "diff-group", Args: map[string]string{"group": "dst", "agg": "avg", "rolling": "true"}},
			// Per host-pair connection counts per window: the communication
			// edges (who talks to whom) plus a load signal per edge.
			{Name: "diff-group", Args: map[string]string{"group": "ips", "agg": "count", "rolling": "true"}},
		},
	}
	connS, err := e.SubmitQuery(connQ)
	if err != nil {
		return err
	}
	e.obsMu.Lock()
	e.obsSessions = append(e.obsSessions, connS)
	e.obsMu.Unlock()
	e.obsWG.Add(1)
	go e.observeConns(connS, index)

	if len(webTo) > 0 {
		urlQ := &query.Query{
			Parsers: []string{"tcp_conn_time", "http_get"},
			From:    []query.Address{{Any: true}},
			To:      webTo,
			// Raw per-connection durations, labeled by URL when the flow
			// carried an HTTP GET.
			Processors: []query.ProcessorSpec{{Name: "diff"}},
		}
		urlS, err := e.SubmitQuery(urlQ)
		if err != nil {
			connS.Stop()
			return err
		}
		e.obsMu.Lock()
		e.obsSessions = append(e.obsSessions, urlS)
		e.obsMu.Unlock()
		e.obsWG.Add(1)
		go e.observeURLs(urlS)
	}
	return nil
}

// StopObservation stops the standing observation sessions (idempotent; also
// run by Close). Session teardown drops the session-labeled observer series
// from the registry.
func (e *Engine) StopObservation() {
	e.obsMu.Lock()
	sessions := e.obsSessions
	e.obsSessions = nil
	e.obsMu.Unlock()
	for _, s := range sessions {
		s.Stop()
	}
	e.obsWG.Wait()
}

// hostByIP resolves an IP-literal string to its topology host, or nil.
func (e *Engine) hostByIP(s string) *topology.Host {
	addr, err := netip.ParseAddr(s)
	if err != nil {
		return nil
	}
	return e.topo.HostByAddr(addr)
}

// observeConns folds the connection-observation session's results into
// registry gauges and the service graph. Result keys are either "ip:port"
// (per-service rolling mean latency) or "srcIP->dstIP" (per-edge rolling
// connection counts).
func (e *Engine) observeConns(s *Session, index map[string]svcInfo) {
	defer e.obsWG.Done()
	reg := e.cfg.Metrics
	graph := e.insight.Graph()
	sessLabel := telemetry.L("session", s.ID)
	for t := range s.Results() {
		if src, dst, ok := strings.Cut(t.Key, "->"); ok {
			sh, dh := e.hostByIP(src), e.hostByIP(dst)
			if sh == nil || dh == nil {
				continue
			}
			graph.Observe(sh.Name, dh.Name)
			reg.Gauge("insight_conn_rate", sessLabel,
				telemetry.L("src", sh.Name), telemetry.L("host", dh.Name)).Set(t.Val)
			continue
		}
		if info, ok := index[t.Key]; ok {
			reg.Gauge("insight_svc_latency_ns", sessLabel,
				telemetry.L("host", info.host.Name),
				telemetry.L("svc", fmt.Sprintf("%s:%d", info.host.Name, info.port)),
				telemetry.L("tier", info.tier)).Set(t.Val)
		}
	}
}

// observeURLs folds the URL-observation session's results into per-URL,
// per-host latency histograms. Each result is one connection's duration; its
// DstIP is the server side (the client closes first, so the end tuple points
// client -> server), giving URL anomalies the host label correlation needs.
func (e *Engine) observeURLs(s *Session) {
	defer e.obsWG.Done()
	reg := e.cfg.Metrics
	sessLabel := telemetry.L("session", s.ID)
	for t := range s.Results() {
		if !strings.HasPrefix(t.Key, "/") {
			continue
		}
		h := e.hostByIP(t.DstIP)
		if h == nil {
			continue
		}
		reg.Histogram("insight_url_latency_ns", sessLabel,
			telemetry.L("url", urlPath(t.Key)), telemetry.L("host", h.Name)).Observe(int64(t.Val))
	}
}

// urlPath strips a query string so one page stays one series.
func urlPath(url string) string {
	if i := strings.IndexByte(url, '?'); i >= 0 {
		return url[:i]
	}
	return url
}
