package core

import (
	"math"
	"time"

	"netalytics/internal/telemetry"
)

// Adaptive sampling (Config.AdaptiveSample) is the deployment-wide companion
// to the per-query SAMPLE auto clause: every query that didn't pin its own
// sampling policy gets a controller that watches the aggregation layer's
// occupancy (mq.Pressure vs the cluster high watermark) and the topology's
// queue lag (tuples in flight inside the executors), and trades accuracy for
// headroom when either signals backpressure. The controller is AIMD like the
// §4.2 feedback loop — halve under pressure, creep back up when clear — but
// is driven by direct occupancy observation instead of overload statuses, so
// it engages before the brokers start shedding, and it publishes what it is
// doing: the effective rate and the estimated relative error it costs are
// exported as adaptive_sample_rate / adaptive_sample_error gauges.
const (
	// adaptiveFloor is the minimum sample rate the controller will impose.
	adaptiveFloor = 0.05
	// adaptiveDecrease is the multiplicative backoff under backpressure.
	adaptiveDecrease = 0.5
	// adaptiveIncrease is the additive recovery step when pressure clears.
	adaptiveIncrease = 0.1
	// adaptiveLagHigh is the stream queue-lag threshold (tuples in flight)
	// treated as backpressure; recovery requires dropping below half of it,
	// the same hysteresis shape as the mq occupancy band.
	adaptiveLagHigh = 8192
)

// adaptiveSampler is one query's controller. step() is the whole control law;
// the observe seam exists so tests can inject backpressure deterministically.
type adaptiveSampler struct {
	s       *Session
	observe func() (occupancy, highWater, queueLag float64)
	rateG   *telemetry.Gauge // adaptive_sample_rate{session}: source of truth
}

func newAdaptiveSampler(s *Session) *adaptiveSampler {
	a := &adaptiveSampler{s: s, observe: s.observePressure}
	reg := s.engine.cfg.Metrics
	sessLabel := telemetry.L("session", s.ID)
	a.rateG = reg.Gauge("adaptive_sample_rate", sessLabel)
	a.rateG.Set(1)
	reg.GaugeFunc("adaptive_sample_error", a.estimatedError, sessLabel)
	return a
}

// Rate returns the controller's current target sample rate.
func (a *adaptiveSampler) Rate() float64 { return a.rateG.Value() }

// estimatedError is the estimated relative standard error the current rate
// imposes on scaled counts: sampling Bernoulli(r) over ~n frames and scaling
// by 1/r gives a count estimator with relative stderr √((1−r)/(r·n)). n is
// the session's delivered-frame counter, so the estimate tightens as the
// query observes more traffic and is exactly 0 while sampling is off.
func (a *adaptiveSampler) estimatedError() float64 {
	r := a.rateG.Value()
	if r >= 1 {
		return 0
	}
	n := float64(a.s.Packets())
	if n < 1 {
		n = 1
	}
	return math.Sqrt((1 - r) / (r * n))
}

// step observes the pipeline once and applies one AIMD adjustment. Inside the
// hysteresis band (pressure neither high nor clearly low) the rate holds.
func (a *adaptiveSampler) step() {
	occ, hw, lag := a.observe()
	rate := a.rateG.Value()
	switch {
	case occ >= hw || lag >= adaptiveLagHigh:
		rate *= adaptiveDecrease
		if rate < adaptiveFloor {
			rate = adaptiveFloor
		}
	case occ <= hw/2 && lag <= adaptiveLagHigh/2:
		if rate >= 1 {
			return
		}
		rate += adaptiveIncrease
		if rate > 1 {
			rate = 1
		}
	default:
		return
	}
	a.apply(rate)
}

// apply pushes the rate to every sampling control point — dedicated monitors,
// or this query's demux subscriptions in shared-tap mode — under failMu
// (failover may be swapping instances), and publishes it.
func (a *adaptiveSampler) apply(rate float64) {
	a.rateG.Set(rate)
	a.s.failMu.Lock()
	defer a.s.failMu.Unlock()
	for _, tgt := range a.s.rateTargets() {
		tgt.SetSampleRate(rate)
	}
}

// run drives step on a ticker until the session stops.
func (a *adaptiveSampler) run(stop <-chan struct{}, every time.Duration) {
	defer a.s.fbWG.Done()
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			a.step()
		case <-stop:
			return
		}
	}
}

// observePressure is the production observe seam: the worst mq topic
// occupancy, the cluster high watermark, and the worst executor queue lag.
// topics and executors are append-only during start, so reads are safe.
func (s *Session) observePressure() (occ, hw, lag float64) {
	hw = s.engine.mq.HighWatermark()
	for _, topic := range s.topics {
		if p := s.engine.mq.Pressure(topic); p > occ {
			occ = p
		}
	}
	for _, ex := range s.executors {
		if l := float64(ex.QueueLag()); l > lag {
			lag = l
		}
	}
	return occ, hw, lag
}

// AdaptiveRate returns the adaptive controller's current sample rate, or 1
// when the session has no controller (knob off, or the query pinned its own
// sampling policy).
func (s *Session) AdaptiveRate() float64 {
	if s.adaptive == nil {
		return 1
	}
	return s.adaptive.Rate()
}
