package core

import (
	"math/rand"
	"testing"
	"time"

	"netalytics/internal/topology"
)

// adaptiveSession submits a plain (no SAMPLE clause) query on an engine with
// the adaptive-sampling knob on and a tick interval long enough that the
// controller's own ticker never fires — tests drive step() by hand through
// the observe seam, so backpressure injection is deterministic.
func adaptiveSession(t *testing.T) (*Engine, *Session) {
	t.Helper()
	topo := topology.MustNew(4)
	topo.RandomizeResources(rand.New(rand.NewSource(5)))
	e := NewEngine(topo, Config{TickInterval: time.Hour, AdaptiveSample: true})
	t.Cleanup(e.Close)
	s, err := e.Submit("PARSE http_get FROM h0-0-0:80 PROCESS (passthrough)")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if s.adaptive == nil {
		t.Fatal("AdaptiveSample on + unpinned query, but no controller attached")
	}
	return e, s
}

func TestAdaptiveSamplingEngagesAndRecovers(t *testing.T) {
	e, s := adaptiveSession(t)

	// Inject mq backpressure: occupancy at the high watermark.
	pressure := 1.0
	s.adaptive.observe = func() (float64, float64, float64) {
		return pressure * e.mq.HighWatermark(), e.mq.HighWatermark(), 0
	}

	s.adaptive.step()
	if r := s.AdaptiveRate(); r != 0.5 {
		t.Fatalf("rate after one overloaded step = %v, want 0.5", r)
	}
	for i := 0; i < 20; i++ {
		s.adaptive.step()
	}
	if r := s.AdaptiveRate(); r != adaptiveFloor {
		t.Fatalf("sustained overload rate = %v, want floor %v", r, adaptiveFloor)
	}
	for _, mr := range s.SampleRates() {
		// The monitor quantizes its admission threshold, so compare loosely.
		if mr < adaptiveFloor-1e-3 || mr > adaptiveFloor+1e-3 {
			t.Errorf("monitor rate = %v, want ~%v (controller must reach the monitors)", mr, adaptiveFloor)
		}
	}

	// Hysteresis band: occupancy between hw/2 and hw holds the rate.
	pressure = 0.75
	s.adaptive.step()
	if r := s.AdaptiveRate(); r != adaptiveFloor {
		t.Fatalf("rate moved inside hysteresis band: %v", r)
	}

	// Pressure clears: the rate must creep back to exactly 1.0.
	pressure = 0
	for i := 0; i < 30; i++ {
		s.adaptive.step()
	}
	if r := s.AdaptiveRate(); r != 1.0 {
		t.Fatalf("recovered rate = %v, want 1.0", r)
	}
	for _, mr := range s.SampleRates() {
		if mr < 1.0-1e-3 {
			t.Errorf("monitor rate after recovery = %v, want 1.0", mr)
		}
	}
}

func TestAdaptiveSamplingQueueLagSignal(t *testing.T) {
	_, s := adaptiveSession(t)
	lag := float64(adaptiveLagHigh)
	s.adaptive.observe = func() (float64, float64, float64) { return 0, 0.8, lag }
	s.adaptive.step()
	if r := s.AdaptiveRate(); r != 0.5 {
		t.Fatalf("rate under queue lag = %v, want 0.5", r)
	}
	// Recovery needs the lag below half the threshold.
	lag = adaptiveLagHigh * 0.75
	s.adaptive.step()
	if r := s.AdaptiveRate(); r != 0.5 {
		t.Fatalf("rate moved while lag inside hysteresis band: %v", r)
	}
	lag = 0
	s.adaptive.step()
	if r := s.AdaptiveRate(); r != 0.6 {
		t.Fatalf("recovery step rate = %v, want 0.6", r)
	}
}

func TestAdaptiveSamplingMetricsExported(t *testing.T) {
	e, s := adaptiveSession(t)
	s.adaptive.observe = func() (float64, float64, float64) { return 1, 0.8, 0 }
	s.adaptive.step()

	points := map[string]float64{}
	for _, p := range e.Metrics().Snapshot() {
		if p.Labels["session"] == s.ID {
			points[p.Name] = p.Value
		}
	}
	if got, ok := points["adaptive_sample_rate"]; !ok || got != 0.5 {
		t.Errorf("adaptive_sample_rate = %v (present=%v), want 0.5", got, ok)
	}
	if got, ok := points["adaptive_sample_error"]; !ok || got <= 0 {
		t.Errorf("adaptive_sample_error = %v (present=%v), want > 0 while sampling", got, ok)
	}

	// Back at rate 1 the error estimate must read exactly 0.
	s.adaptive.observe = func() (float64, float64, float64) { return 0, 0.8, 0 }
	for i := 0; i < 10; i++ {
		s.adaptive.step()
	}
	if err := s.adaptive.estimatedError(); err != 0 {
		t.Errorf("estimated error at rate 1 = %v, want 0", err)
	}
}

func TestAdaptiveSamplingRespectsPinnedPolicies(t *testing.T) {
	topo := topology.MustNew(4)
	topo.RandomizeResources(rand.New(rand.NewSource(5)))
	e := NewEngine(topo, Config{TickInterval: time.Hour, AdaptiveSample: true})
	t.Cleanup(e.Close)

	for _, q := range []string{
		"PARSE http_get FROM h0-0-0:80 SAMPLE 0.3 PROCESS (passthrough)",
		"PARSE http_get FROM h0-0-0:80 SAMPLE auto PROCESS (passthrough)",
	} {
		s, err := e.Submit(q)
		if err != nil {
			t.Fatalf("Submit(%q): %v", q, err)
		}
		if s.adaptive != nil {
			t.Errorf("query %q got an adaptive controller despite pinning its policy", q)
		}
		if r := s.AdaptiveRate(); r != 1 {
			t.Errorf("AdaptiveRate without controller = %v, want 1", r)
		}
		s.Stop()
	}
}

func TestSketchAnalyticsConfigReachesTopology(t *testing.T) {
	topo := topology.MustNew(4)
	topo.RandomizeResources(rand.New(rand.NewSource(5)))
	e := NewEngine(topo, Config{TickInterval: time.Hour, SketchAnalytics: true, SketchTopKCapacity: 123})
	t.Cleanup(e.Close)

	s, err := e.Submit("PARSE http_get FROM h0-0-0:80 PROCESS (top-k: k=5)")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	defer s.Stop()
	if len(s.executors) != 1 {
		t.Fatalf("executors = %d, want 1", len(s.executors))
	}
	nodes := map[string]bool{}
	for _, n := range s.executors[0].Nodes() {
		nodes[n] = true
	}
	if !nodes["sketch"] || nodes["rank"] {
		t.Errorf("SketchAnalytics topology nodes = %v, want sketch stage instead of exact rank", s.executors[0].Nodes())
	}

	// A per-query override must win over the deployment default.
	s2, err := e.Submit("PARSE http_get FROM h0-0-0:80 PROCESS (top-k: k=5, sketch=false)")
	if err != nil {
		t.Fatalf("Submit override: %v", err)
	}
	defer s2.Stop()
	nodes = map[string]bool{}
	for _, n := range s2.executors[0].Nodes() {
		nodes[n] = true
	}
	if nodes["sketch"] || !nodes["rank"] {
		t.Errorf("sketch=false topology nodes = %v, want exact rank stage", s2.executors[0].Nodes())
	}
}
