package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"netalytics/internal/apps"
	"netalytics/internal/topology"
)

// TestStressManyQueriesAndTenants runs a larger testbed (k=8, 128 hosts)
// with several applications and a mix of sequential and concurrent queries
// using every parser, asserting the engine isolates and reclaims them all.
func TestStressManyQueriesAndTenants(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	topo := topology.MustNew(8)
	topo.RandomizeResources(rand.New(rand.NewSource(2)))
	e := NewEngine(topo, Config{TickInterval: 20 * time.Millisecond})
	defer e.Close()
	hosts := topo.Hosts()
	net := e.Network()

	web, err := apps.StartApp(net, hosts[0], apps.AppConfig{
		Routes: map[string]apps.Route{"/": {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer web.Stop()
	db, err := apps.StartMySQL(net, hosts[4], apps.MySQLConfig{DefaultCost: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Stop()
	cache, err := apps.StartMemcached(net, hosts[8], apps.MemcachedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Stop()

	queries := []string{
		fmt.Sprintf("PARSE http_get FROM * TO %s:80 PROCESS (top-k: k=5, w=500ms)", hosts[0].Name),
		fmt.Sprintf("PARSE tcp_conn_time FROM * TO %s:80 PROCESS (diff-group: group=dstIP)", hosts[0].Name),
		fmt.Sprintf("PARSE tcp_pkt_size, tcp_flow_key FROM * TO %s:80 PROCESS (group-sum: group=ips)", hosts[0].Name),
		fmt.Sprintf("PARSE mysql_query FROM * TO %s:3306 PROCESS (passthrough)", hosts[4].Name),
		fmt.Sprintf("PARSE memcached_get FROM * TO %s:11211 PROCESS (top-k: k=3)", hosts[8].Name),
		fmt.Sprintf("PARSE tcp_flow_stats FROM * TO %s:80 SAMPLE 0.8 PROCESS (group-sum: group=dstIP)", hosts[0].Name),
	}
	sessions := make([]*Session, 0, len(queries))
	for _, q := range queries {
		s, err := e.Submit(q)
		if err != nil {
			t.Fatalf("Submit(%q): %v", q, err)
		}
		sessions = append(sessions, s)
		// Drain each session's results concurrently.
		go func(s *Session) {
			for range s.Results() {
			}
		}(s)
	}
	if got := len(e.Sessions()); got != len(queries) {
		t.Fatalf("Sessions = %d, want %d", got, len(queries))
	}
	if got := e.Orchestrator().InstanceCount(); got < len(queries) {
		t.Fatalf("instances = %d, want >= %d", got, len(queries))
	}

	// Traffic from several tenant clients at once.
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := hosts[64+c]
			apps.RunHTTPLoad(net, client, apps.LoadConfig{
				Requests: 40, Concurrency: 4, Target: hosts[0],
				URL: func(i int) string { return fmt.Sprintf("/p%d", i%5) },
			})
			cli, err := apps.DialMySQL(net, client, hosts[4], 0)
			if err != nil {
				t.Errorf("mysql dial: %v", err)
				return
			}
			for i := 0; i < 10; i++ {
				if err := cli.Query("SELECT x", 5*time.Second); err != nil {
					t.Errorf("mysql query: %v", err)
					break
				}
			}
			cli.Close()
			conn, err := net.Endpoint(client).Dial(hosts[8].Addr, 11211)
			if err != nil {
				t.Errorf("memcached dial: %v", err)
				return
			}
			for i := 0; i < 10; i++ {
				if _, err := conn.Request([]byte(fmt.Sprintf("get k%d\r\n", i%3)), 5*time.Second); err != nil {
					t.Errorf("memcached get: %v", err)
					break
				}
			}
			conn.Close()
		}(c)
	}
	wg.Wait()
	time.Sleep(300 * time.Millisecond)

	// Every session observed its traffic.
	for i, s := range sessions {
		if s.Packets() == 0 {
			t.Errorf("session %d (%s) saw no packets", i, queries[i])
		}
	}

	// Sequential teardown releases everything.
	for _, s := range sessions {
		s.Stop()
	}
	if got := len(e.Sessions()); got != 0 {
		t.Errorf("sessions remain: %d", got)
	}
	if got := e.Orchestrator().InstanceCount(); got != 0 {
		t.Errorf("instances remain: %d", got)
	}
	if got := e.Controller().RuleCount(); got != 0 {
		t.Errorf("rules remain: %d", got)
	}
}
