// Package core wires the NetAlytics pipeline of Fig. 1 together: a submitted
// query is parsed and validated, monitors are placed under covering ToR
// switches (§4.1), SDN mirror rules steer copies of the matching flows to
// them (§3.4), parser output batches flow into per-parser aggregation topics
// (§3.2), and the requested Storm-style topology processes the tuples,
// delivering results back to the session. LIMIT clauses bound the query's
// lifetime and SAMPLE auto enables the feedback-driven sampling loop (§4.2).
package core

import (
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"netalytics/internal/fault"
	"netalytics/internal/insight"
	"netalytics/internal/mq"
	"netalytics/internal/nfv"
	"netalytics/internal/parsers"
	"netalytics/internal/placement"
	"netalytics/internal/query"
	"netalytics/internal/sdn"
	"netalytics/internal/stream"
	"netalytics/internal/telemetry"
	"netalytics/internal/topology"
	"netalytics/internal/tuple"
	"netalytics/internal/vnet"
)

// Engine errors.
var (
	ErrUnknownHost = errors.New("core: address names no host in the topology")
	ErrClosed      = errors.New("core: engine closed")
)

// Config parameterizes an Engine.
type Config struct {
	// Brokers is the aggregation-cluster size (default 2).
	Brokers int
	// MQ tunes the aggregation layer.
	MQ mq.Config
	// MonitorWorkers is the per-parser worker count in each monitor.
	MonitorWorkers int
	// SpoutParallelism is the Kafka-spout task count per topology.
	SpoutParallelism int
	// TickInterval is the stream engine's window-advance interval.
	TickInterval time.Duration
	// StreamBatchSize is the stream executor's sub-batch size: tuples per
	// channel send between topology tasks. 0 keeps the engine default
	// (stream.DefaultBatchSize); 1 disables batching.
	StreamBatchSize int
	// VnetFlowCacheSize bounds the network's per-flow forwarding-decision
	// cache (see "Forwarding fast path" in DESIGN.md). 0 keeps the default
	// (vnet.DefaultFlowCacheSize); negative disables the cache, the A/B
	// baseline where every frame re-resolves its path and mirror targets.
	VnetFlowCacheSize int
	// IngestShards enables the per-core sharded ingest path (DESIGN.md
	// "Sharded ingest & work-stealing"): each mq partition's log splits into
	// this many lock-free single-writer rings, each monitor runs this many
	// work-stealing collectors, and spout tasks get partition-to-core
	// affinity hints. 0 (the default) keeps the legacy single-owner
	// datapaths — the A/B baseline.
	IngestShards int
	// SketchAnalytics switches query topologies from exact counting to the
	// bounded-memory sketch pipelines of internal/sketch (space-saving top-k,
	// count-min group counts, HyperLogLog distinct counts — see "Sketch
	// analytics" in DESIGN.md). Individual queries can override with a
	// sketch=true/false processor argument; exact stays the A/B baseline.
	SketchAnalytics bool
	// SketchTopKCapacity pins the space-saving counter budget for top-k
	// queries. 0 derives it from each query's k (sketch.DefaultCapacity).
	SketchTopKCapacity int
	// SharedTaps enables the demand-merging shared-tap control plane
	// (DESIGN.md "Shared-tap control plane"): overlapping queries share one
	// refcounted SDN mirror rule, one monitor NF per host and one parse of
	// the mirrored stream, with a demux fanning parsed tuples out to each
	// subscribed query. false — the default — keeps the legacy
	// one-query-one-monitor control plane, the A/B baseline. Queries with a
	// packet LIMIT always take the legacy path (a shared monitor's frame
	// count is not attributable to one query), even when SharedTaps is on.
	SharedTaps bool
	// AdaptiveSample enables the per-query adaptive sampling controller:
	// queries that don't pin their own SAMPLE policy get an AIMD controller
	// driven by mq occupancy and stream queue lag, exporting its effective
	// rate and estimated error as adaptive_sample_rate /
	// adaptive_sample_error gauges (see internal/core/adaptive.go).
	AdaptiveSample bool
	// Policy selects the placement policy (default NetAlytics-Network).
	Policy placement.Policy
	// PlacementParams tunes capacities for placement.
	PlacementParams placement.Params
	// Seed drives placement randomness (default 1).
	Seed int64
	// ResultBuffer bounds each session's result channel (default 4096).
	ResultBuffer int
	// Metrics is the telemetry registry every pipeline layer reports into.
	// Nil gets a fresh registry, so Engine.Metrics() is always usable.
	Metrics *telemetry.Registry
	// TraceSampleEvery sets the stage-latency trace sampling period: one
	// traced tuple per N emitted. It follows the telemetry.SamplePeriod
	// contract — 0 means the default (telemetry.DefaultSampleEvery), 1
	// traces every tuple, negative disables tracing entirely (zero hot-path
	// cost). After withDefaults the field is fully resolved: a positive
	// period or 0 for off.
	TraceSampleEvery int
	// Insight, when non-nil, runs the always-on insight tier beside the
	// query pipelines: a registry-fed anomaly-detection topology publishing
	// correlated incidents on the `_incidents` topic (see internal/insight).
	// The engine fills in the config's Registry, Cluster and Graph.
	Insight *insight.Config
	// Faults, when non-nil, wires the deterministic fault injector into
	// every layer: the vnet frame path (loss/latency/partitions), the mq
	// produce/consume paths (unavailability, errors) and the NFV
	// orchestrator (monitor crashes, answered by session failover). Nil —
	// the default — leaves the pipeline entirely fault-free.
	Faults *fault.Injector
}

func (c Config) withDefaults() Config {
	if c.Brokers <= 0 {
		c.Brokers = 2
	}
	if c.MonitorWorkers <= 0 {
		c.MonitorWorkers = 1
	}
	if c.SpoutParallelism <= 0 {
		c.SpoutParallelism = 1
	}
	if c.TickInterval <= 0 {
		c.TickInterval = stream.DefaultTickInterval
	}
	if c.Policy == (placement.Policy{}) {
		c.Policy = placement.NetalyticsNetwork
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ResultBuffer <= 0 {
		c.ResultBuffer = 4096
	}
	if c.Metrics == nil {
		c.Metrics = telemetry.NewRegistry()
	}
	c.TraceSampleEvery = telemetry.SamplePeriod(c.TraceSampleEvery, telemetry.DefaultSampleEvery)
	if c.VnetFlowCacheSize == 0 {
		c.VnetFlowCacheSize = vnet.DefaultFlowCacheSize
	}
	return c
}

// Engine is a NetAlytics deployment over one data-center network.
type Engine struct {
	cfg     Config
	topo    *topology.FatTree
	ctrl    *sdn.Controller
	net     *vnet.Network
	mq      *mq.Cluster
	nfv     *nfv.Orchestrator
	insight *insight.Tier // nil unless Config.Insight was set
	shared  *sharedTaps   // nil unless Config.SharedTaps was set

	mu       sync.Mutex
	sessions map[string]*Session
	nextID   int
	closed   bool

	obsMu       sync.Mutex
	obsSessions []*Session // standing observation sessions feeding the tier
	obsWG       sync.WaitGroup
}

// NewEngine creates an engine over the topology, with its own SDN
// controller, virtual network and aggregation cluster.
func NewEngine(topo *topology.FatTree, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	ctrl := sdn.NewController()
	ctrl.RegisterMetrics(cfg.Metrics)
	net := vnet.New(topo, ctrl)
	if cfg.VnetFlowCacheSize > 0 {
		net.SetFlowCacheSize(cfg.VnetFlowCacheSize)
	}
	net.RegisterMetrics(cfg.Metrics)
	cfg.MQ.Metrics = cfg.Metrics
	if cfg.IngestShards > 0 && cfg.MQ.IngestShards == 0 {
		cfg.MQ.IngestShards = cfg.IngestShards
	}
	e := &Engine{
		cfg:      cfg,
		topo:     topo,
		ctrl:     ctrl,
		net:      net,
		mq:       mq.NewCluster(cfg.Brokers, cfg.MQ),
		nfv:      nfv.New(net),
		sessions: make(map[string]*Session),
	}
	if cfg.SharedTaps {
		e.shared = newSharedTaps(e)
	}
	// Monitor failover: a crashed instance dispatches to its session, which
	// relaunches it and re-installs its mirror rules (see handleMonitorCrash).
	// Shared-tap instances run under the synthetic sharedOwner query and
	// dispatch to the registry instead, which relaunches the monitor and
	// re-installs the rules of every subscribed query. Wired unconditionally —
	// Crash is also reachable directly through the orchestrator, not only
	// through the fault injector.
	e.nfv.SetOnCrash(func(queryID string, in *nfv.Instance) {
		if queryID == sharedOwner {
			if e.shared != nil {
				e.shared.handleCrash(in)
			}
			return
		}
		if s := e.Session(queryID); s != nil {
			s.handleMonitorCrash(in)
		}
	})
	if inj := cfg.Faults; inj != nil {
		net.SetFaultHook(inj)
		e.mq.SetFaultHook(inj)
		inj.SetMonitorCrashFn(e.nfv.CrashOne)
		inj.SetPods(topo.K)
		parts := cfg.MQ.Partitions
		if parts <= 0 {
			parts = mq.DefaultPartitions
		}
		inj.SetMQPartitions(parts)
	}
	if cfg.Insight != nil {
		icfg := *cfg.Insight
		icfg.Registry = cfg.Metrics
		icfg.Cluster = e.mq
		if icfg.Graph == nil {
			icfg.Graph = insight.NewServiceGraph(topo)
		}
		if icfg.Filter == nil {
			icfg.Filter = insight.DefaultFilter
		}
		tier, err := insight.New(icfg)
		if err != nil {
			// Only reachable through an invalid hand-built topology; the
			// engine-assembled one is statically correct.
			panic("core: building insight tier: " + err.Error())
		}
		e.insight = tier
		tier.Start()
	}
	return e
}

// Orchestrator returns the NFV orchestrator managing monitor instances.
func (e *Engine) Orchestrator() *nfv.Orchestrator { return e.nfv }

// Topology returns the engine's fat tree.
func (e *Engine) Topology() *topology.FatTree { return e.topo }

// Network returns the virtual network applications attach to.
func (e *Engine) Network() *vnet.Network { return e.net }

// Controller returns the SDN controller.
func (e *Engine) Controller() *sdn.Controller { return e.ctrl }

// Aggregation returns the mq cluster.
func (e *Engine) Aggregation() *mq.Cluster { return e.mq }

// Metrics returns the engine's telemetry registry (never nil).
func (e *Engine) Metrics() *telemetry.Registry { return e.cfg.Metrics }

// Insight returns the running insight tier, or nil when Config.Insight was
// not set.
func (e *Engine) Insight() *insight.Tier { return e.insight }

// SharedMonitorCount returns the number of live shared monitor instances,
// 0 when Config.SharedTaps is off.
func (e *Engine) SharedMonitorCount() int {
	if e.shared == nil {
		return 0
	}
	return e.shared.MonitorCount()
}

// Sessions lists the currently running query sessions.
func (e *Engine) Sessions() []*Session {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*Session, 0, len(e.sessions))
	for _, s := range e.sessions {
		out = append(out, s)
	}
	return out
}

// Session returns a running session by ID, or nil.
func (e *Engine) Session(id string) *Session {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sessions[id]
}

// Close stops all sessions (observation sessions first) and the insight
// tier.
func (e *Engine) Close() {
	e.StopObservation()
	e.mu.Lock()
	e.closed = true
	sessions := make([]*Session, 0, len(e.sessions))
	for _, s := range e.sessions {
		sessions = append(sessions, s)
	}
	e.mu.Unlock()
	for _, s := range sessions {
		s.Stop()
	}
	if e.insight != nil {
		e.insight.Stop()
	}
}

// Submit parses, validates, compiles and launches a query, returning its
// live session.
func (e *Engine) Submit(text string) (*Session, error) {
	q, err := query.Parse(text)
	if err != nil {
		return nil, err
	}
	return e.SubmitQuery(q)
}

// SubmitQuery launches an already-parsed query.
func (e *Engine) SubmitQuery(q *query.Query) (*Session, error) {
	knownParsers := make(map[string]bool, len(parsers.Registry))
	for name := range parsers.Registry {
		knownParsers[name] = true
	}
	knownProcs := make(map[string]bool)
	for _, name := range stream.ProcessorNames() {
		knownProcs[name] = true
	}
	if err := query.Validate(q, knownParsers, knownProcs); err != nil {
		return nil, err
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	e.nextID++
	id := fmt.Sprintf("q%d", e.nextID)
	e.mu.Unlock()

	s := &Session{
		ID:      id,
		Query:   q,
		engine:  e,
		results: make(chan tuple.Tuple, e.cfg.ResultBuffer),
		done:    make(chan struct{}),
	}
	if err := s.start(); err != nil {
		s.Stop()
		return nil, err
	}

	e.mu.Lock()
	e.sessions[id] = s
	e.mu.Unlock()
	return s, nil
}

// resolveAddress maps a query address to its topology hosts and a port.
// Wildcards resolve to nil (any host); IPs and hostnames to one host; CIDR
// subnets (10.0.2.0/24:80) to every topology host inside the prefix.
func (e *Engine) resolveAddress(a query.Address) ([]*topology.Host, uint16, error) {
	if a.Any || a.Host == "" {
		return nil, a.Port, nil
	}
	if prefix, err := netip.ParsePrefix(a.Host); err == nil {
		var hosts []*topology.Host
		for _, h := range e.topo.Hosts() {
			if prefix.Contains(h.Addr) {
				hosts = append(hosts, h)
			}
		}
		if len(hosts) == 0 {
			return nil, 0, fmt.Errorf("%w: subnet %s is empty", ErrUnknownHost, a.Host)
		}
		return hosts, a.Port, nil
	}
	if ip, err := netip.ParseAddr(a.Host); err == nil {
		h := e.topo.HostByAddr(ip)
		if h == nil {
			return nil, 0, fmt.Errorf("%w: %s", ErrUnknownHost, a.Host)
		}
		return []*topology.Host{h}, a.Port, nil
	}
	h := e.topo.HostByName(a.Host)
	if h == nil {
		return nil, 0, fmt.Errorf("%w: %s", ErrUnknownHost, a.Host)
	}
	return []*topology.Host{h}, a.Port, nil
}

// matchSpec pairs an OpenFlow-style match with the hosts anchoring it.
type matchSpec struct {
	match   sdn.Match
	anchor  *topology.Host // a concrete host whose rack can cover the flows
	srcHost *topology.Host
	dstHost *topology.Host
}

// compileMatches expands the FROM/TO lists into match specs (§3.4): the
// cartesian product of the two lists, each translated into the match portion
// of an OpenFlow rule. Subnet addresses expand to their member hosts, so
// rules stay host-granular and each gets a concrete anchor for placement.
func (e *Engine) compileMatches(q *query.Query) ([]matchSpec, error) {
	froms := q.From
	if len(froms) == 0 {
		froms = []query.Address{{Any: true}}
	}
	tos := q.To
	if len(tos) == 0 {
		tos = []query.Address{{Any: true}}
	}
	var specs []matchSpec
	for _, fa := range froms {
		fhs, fport, err := e.resolveAddress(fa)
		if err != nil {
			return nil, err
		}
		for _, ta := range tos {
			ths, tport, err := e.resolveAddress(ta)
			if err != nil {
				return nil, err
			}
			if fhs == nil && ths == nil {
				return nil, errors.New("core: FROM and TO cannot both be fully wildcarded (monitor placement needs an anchor host)")
			}
			// nil means wildcard on that side: iterate once with a nil host.
			fList := fhs
			if fList == nil {
				fList = []*topology.Host{nil}
			}
			tList := ths
			if tList == nil {
				tList = []*topology.Host{nil}
			}
			for _, fh := range fList {
				for _, th := range tList {
					m := sdn.Match{SrcPort: fport, DstPort: tport}
					if fh != nil {
						m.SrcIP = fh.Addr
					}
					if th != nil {
						m.DstIP = th.Addr
					}
					anchor := th
					if anchor == nil {
						anchor = fh
					}
					specs = append(specs, matchSpec{match: m, anchor: anchor, srcHost: fh, dstHost: th})
				}
			}
		}
	}
	return specs, nil
}
