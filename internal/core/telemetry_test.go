package core

import (
	"fmt"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"netalytics/internal/apps"
	"netalytics/internal/monitor"
	"netalytics/internal/nfv"
	"netalytics/internal/packet"
	"netalytics/internal/telemetry"
	"netalytics/internal/tuple"
)

// tickParser emits one tuple per TCP packet.
type tickParser struct{}

func (tickParser) Name() string { return "tick" }
func (tickParser) Handle(p *monitor.Packet, emit monitor.EmitFunc) {
	if p.Frame.TCP != nil {
		emit(tuple.Tuple{FlowID: p.FlowID, TS: p.TS.UnixNano(), Val: 1})
	}
}

// drivenMonitor builds, drives and stops a standalone monitor: frames valid
// TCP packets plus malformed garbage, so several Stats fields go non-zero.
func drivenMonitor(t *testing.T, frames, malformed int) *monitor.Monitor {
	t.Helper()
	m, err := monitor.New(monitor.Config{
		Parsers:   []monitor.Factory{func() monitor.Parser { return tickParser{} }},
		Sink:      monitor.SinkFunc(func(*tuple.Batch) error { return nil }),
		BatchSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	src := netip.MustParseAddr("10.0.0.2")
	dst := netip.MustParseAddr("10.0.0.3")
	for i := 0; i < frames; i++ {
		var b packet.Builder
		raw := b.TCP(packet.TCPSpec{
			Src: src, Dst: dst, SrcPort: uint16(1000 + i), DstPort: 80,
			Flags: packet.TCPFlagACK, Payload: []byte("x"),
		})
		m.Deliver(raw, time.Now())
	}
	for i := 0; i < malformed; i++ {
		m.Deliver([]byte{0xde, 0xad}, time.Now())
	}
	m.Stop()
	return m
}

// TestMonitorStatsAggregation pins MonitorStats' contract: every field of
// monitor.Stats is the sum across instances. The check walks the struct with
// reflection so a field added to monitor.Stats but forgotten in MonitorStats
// fails here instead of silently reading zero.
func TestMonitorStatsAggregation(t *testing.T) {
	m1 := drivenMonitor(t, 30, 3)
	m2 := drivenMonitor(t, 20, 0)
	s := &Session{instances: []*nfv.Instance{{Monitor: m1}, {Monitor: m2}}}

	got := reflect.ValueOf(s.MonitorStats())
	st1 := reflect.ValueOf(m1.Stats())
	st2 := reflect.ValueOf(m2.Stats())
	typ := got.Type()
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		want := st1.Field(i).Uint() + st2.Field(i).Uint()
		if have := got.Field(i).Uint(); have != want {
			t.Errorf("MonitorStats.%s = %d, want %d (sum of instances)", name, have, want)
		}
	}
	// Sanity: the fields this test exercises really are non-zero.
	total := s.MonitorStats()
	if total.Received != 53 || total.Malformed != 3 || total.Tuples != 50 {
		t.Errorf("unexpected driven counts: %+v", total)
	}

	var empty Session
	if empty.MonitorStats() != (monitor.Stats{}) {
		t.Errorf("zero-instance MonitorStats = %+v, want zeros", empty.MonitorStats())
	}
}

// TestSessionTelemetry runs a traced query end to end and checks the
// coherent snapshot: every pipeline stage has latency samples, every layer
// reports counters, and the registry holds the session's series.
func TestSessionTelemetry(t *testing.T) {
	e := newEngine(t)
	e.cfg.TraceSampleEvery = 1 // trace every tuple so short runs yield samples
	hosts := e.Topology().Hosts()
	server, client := hosts[0], hosts[12]

	app, err := apps.StartApp(e.Network(), server, apps.AppConfig{
		Routes: map[string]apps.Route{"/": {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()

	sess, err := e.Submit(fmt.Sprintf("PARSE http_get FROM * TO %s:80 PROCESS (passthrough)", server.Name))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	res := apps.RunHTTPLoad(e.Network(), client, apps.LoadConfig{
		Requests: 30, Target: server,
		URL: func(i int) string { return fmt.Sprintf("/p-%d", i%3) },
	})
	if res.Errors != 0 {
		t.Fatalf("load errors = %d", res.Errors)
	}

	// Wait for results to flow so traces complete at the sink.
	got := 0
	deadline := time.After(5 * time.Second)
	for got < 10 {
		select {
		case _, ok := <-sess.Results():
			if !ok {
				t.Fatalf("results closed early with %d tuples", got)
			}
			got++
		case <-deadline:
			t.Fatalf("timed out with %d tuples", got)
		}
	}

	tel := sess.Telemetry()
	if tel.SessionID != sess.ID {
		t.Errorf("SessionID = %q", tel.SessionID)
	}
	if len(tel.Stages) != len(telemetry.Stages) {
		t.Fatalf("Stages count = %d, want %d", len(tel.Stages), len(telemetry.Stages))
	}
	for i, name := range telemetry.Stages {
		if tel.Stages[i].Stage != name {
			t.Errorf("Stages[%d] = %q, want %q", i, tel.Stages[i].Stage, name)
		}
	}
	e2e := tel.Stage(telemetry.StageEndToEnd)
	if e2e.Count == 0 {
		t.Error("end_to_end stage has no samples")
	}
	if e2e.P99NS < e2e.P50NS {
		t.Errorf("e2e p99 %v < p50 %v", e2e.P99NS, e2e.P50NS)
	}
	for _, name := range []string{telemetry.StageCaptureToParse, telemetry.StageParseToMQ,
		telemetry.StageMQToStream, telemetry.StageStreamToSink} {
		if tel.Stage(name).Count == 0 {
			t.Errorf("stage %s has no samples", name)
		}
	}

	if tel.Packets == 0 || tel.PumpFrames == 0 {
		t.Errorf("no packets recorded: %+v", tel)
	}
	if tel.Monitor.Tuples == 0 {
		t.Error("monitor layer reports no tuples")
	}
	if len(tel.Topics) == 0 {
		t.Error("no topic stats")
	}
	for topic, ts := range tel.Topics {
		if ts.Appended == 0 {
			t.Errorf("topic %s has no appends", topic)
		}
	}
	if len(tel.Registry) == 0 {
		t.Error("registry snapshot empty")
	}
	found := map[string]bool{}
	for _, p := range tel.Registry {
		found[p.Name] = true
	}
	for _, name := range []string{"monitor_received", "mq_appended", "pipeline_latency_ns",
		"nfv_pump_frames", "session_result_drops", "stream_queue_lag", "vnet_mirrored"} {
		if !found[name] {
			t.Errorf("registry missing %s", name)
		}
	}

	// Stop retires the session's registry series; the snapshot keeps working
	// from layer pointers.
	sess.Stop()
	for _, p := range e.Metrics().Snapshot() {
		if p.Labels["session"] == sess.ID {
			t.Errorf("series %s{session=%s} survived Stop", p.Name, sess.ID)
		}
	}
	after := sess.Telemetry()
	if after.Stage(telemetry.StageEndToEnd).Count < e2e.Count {
		t.Error("post-Stop telemetry lost stage samples")
	}
	if after.Monitor.Tuples == 0 {
		t.Error("post-Stop telemetry lost monitor stats")
	}
}

// TestTracingDisabled checks that a negative TraceSampleEvery session still
// reports all stages, with zero samples and no stamped tuples.
func TestTracingDisabled(t *testing.T) {
	e := newEngine(t)
	e.cfg.TraceSampleEvery = -1
	hosts := e.Topology().Hosts()
	server, client := hosts[0], hosts[12]

	app, err := apps.StartApp(e.Network(), server, apps.AppConfig{
		Routes: map[string]apps.Route{"/": {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()

	sess, err := e.Submit(fmt.Sprintf("PARSE http_get FROM * TO %s:80 PROCESS (passthrough)", server.Name))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	res := apps.RunHTTPLoad(e.Network(), client, apps.LoadConfig{
		Requests: 10, Target: server,
		URL: func(int) string { return "/" },
	})
	if res.Errors != 0 {
		t.Fatalf("load errors = %d", res.Errors)
	}
	deadline := time.After(5 * time.Second)
	got := 0
	for got < 5 {
		select {
		case tu, ok := <-sess.Results():
			if !ok {
				t.Fatalf("results closed early with %d tuples", got)
			}
			if tu.Trace != nil {
				t.Error("tuple carries a trace with tracing disabled")
			}
			got++
		case <-deadline:
			t.Fatalf("timed out with %d tuples", got)
		}
	}
	tel := sess.Telemetry()
	if len(tel.Stages) != len(telemetry.Stages) {
		t.Fatalf("Stages count = %d", len(tel.Stages))
	}
	for _, st := range tel.Stages {
		if st.Count != 0 {
			t.Errorf("stage %s has %d samples with tracing disabled", st.Stage, st.Count)
		}
	}
}
