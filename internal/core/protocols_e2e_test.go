package core

// End-to-end coverage for the protocol-breadth parsers: real Redis/DNS/TLS
// servers and clients on the vnet, queries referencing the new parser names,
// and the stock stream topologies computing the answers the issue calls for —
// top-k Redis commands, DNS NXDOMAIN rate, per-SNI connection counts.

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"netalytics/internal/apps"
	"netalytics/internal/proto"
	"netalytics/internal/stream"
)

// TestRESPTopKCommandsEndToEnd answers "what are the hottest Redis commands"
// over live RESP traffic: a top-k over resp_command tuples, whose keys are
// the upper-cased command names.
func TestRESPTopKCommandsEndToEnd(t *testing.T) {
	e := newEngine(t)
	hosts := e.Topology().Hosts()
	server, client := hosts[0], hosts[12]

	srv, err := apps.StartRedis(e.Network(), server, apps.RedisConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	sess, err := e.Submit(fmt.Sprintf(
		"PARSE resp_command FROM * TO %s:6379 PROCESS (top-k: k=3, w=2s)", server.Name))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	cli, err := apps.DialRedis(e.Network(), client, server, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// Skewed command mix: GET dominates (18), SET (8) and DEL (4) trail.
	for i := 0; i < 8; i++ {
		if _, err := cli.Do(time.Second, "SET", fmt.Sprintf("k%d", i%4), "v"); err != nil {
			t.Fatalf("SET: %v", err)
		}
	}
	for i := 0; i < 18; i++ {
		if _, err := cli.Do(time.Second, "GET", fmt.Sprintf("k%d", i%4)); err != nil {
			t.Fatalf("GET: %v", err)
		}
	}
	for i := 0; i < 4; i++ {
		if _, err := cli.Do(time.Second, "DEL", fmt.Sprintf("k%d", i)); err != nil {
			t.Fatalf("DEL: %v", err)
		}
	}
	if got := srv.Commands(); got != 30 {
		t.Fatalf("server saw %d commands, want 30", got)
	}

	time.Sleep(200 * time.Millisecond)
	sess.Stop()

	var best []stream.RankEntry
	for tu := range sess.Results() {
		if entries, ok := stream.DecodeRankings(tu); ok && len(entries) > 0 {
			if len(best) == 0 || entries[0].Count > best[0].Count {
				best = entries
			}
		}
	}
	if len(best) == 0 {
		t.Fatalf("no rankings produced (stats %+v)", sess.MonitorStats())
	}
	if best[0].Key != "GET" {
		t.Errorf("top command = %+v, want GET", best[0])
	}
	if best[0].Count != 18 {
		t.Errorf("GET count = %v, want 18", best[0].Count)
	}
}

// TestDNSNXDomainRateEndToEnd computes a resolution-failure breakdown:
// dns_query keys responses by rcode name, so a group-count over the tuple
// key yields NOERROR/NXDOMAIN tallies (query tuples show up under their
// question names and don't collide).
func TestDNSNXDomainRateEndToEnd(t *testing.T) {
	e := newEngine(t)
	hosts := e.Topology().Hosts()
	server, client := hosts[1], hosts[13]

	srv, err := apps.StartDNS(e.Network(), server, apps.DNSConfig{Zone: map[string][]netip.Addr{
		"api.example.com": {netip.MustParseAddr("10.0.9.1")},
		"db.example.com":  {netip.MustParseAddr("10.0.9.2")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	sess, err := e.Submit(fmt.Sprintf(
		"PARSE dns_query FROM * TO %s:53 PROCESS (group-count: group=key)", server.Name))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	r, err := apps.NewDNSResolver(e.Network(), client, server, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// 6 resolvable lookups, 4 guaranteed misses.
	for i := 0; i < 6; i++ {
		name := "api.example.com"
		if i%2 == 1 {
			name = "db.example.com"
		}
		if _, err := r.Resolve(name, proto.DNSTypeA, time.Second); err != nil {
			t.Fatalf("Resolve: %v", err)
		}
	}
	for i := 0; i < 4; i++ {
		m, err := r.Resolve(fmt.Sprintf("missing-%d.example.com", i), proto.DNSTypeA, time.Second)
		if err != nil {
			t.Fatalf("Resolve miss: %v", err)
		}
		if m.RCode != proto.DNSRCodeNXDomain {
			t.Fatalf("miss rcode = %d, want NXDOMAIN", m.RCode)
		}
	}
	if srv.Queries() != 10 || srv.NXDomains() != 4 {
		t.Fatalf("server queries = %d nxdomain = %d, want 10/4", srv.Queries(), srv.NXDomains())
	}

	// Cumulative group counts: drain until the rcode tallies converge.
	counts := map[string]float64{}
	deadline := time.After(5 * time.Second)
	for counts["NXDOMAIN"] < 4 || counts["NOERROR"] < 6 {
		select {
		case tu, ok := <-sess.Results():
			if !ok {
				t.Fatalf("results closed early: %v", counts)
			}
			counts[tu.Key] = tu.Val // cumulative aggregates: last wins
		case <-deadline:
			t.Fatalf("timed out with counts %v (stats %+v)", counts, sess.MonitorStats())
		}
	}
	sess.Stop()
	for tu := range sess.Results() { // cleanup flushes every group
		counts[tu.Key] = tu.Val
	}
	if counts["NXDOMAIN"] != 4 || counts["NOERROR"] != 6 {
		t.Errorf("rcode counts = %v, want NXDOMAIN=4 NOERROR=6", counts)
	}
	// Query-side tuples are keyed by question name.
	if counts["api.example.com"] == 0 || counts["db.example.com"] == 0 {
		t.Errorf("missing query-name groups: %v", counts)
	}
}

// TestTLSSNIConnectionCountsEndToEnd counts connections per contacted
// service without decrypting anything: tls_sni emits one tuple per flow
// keyed by the ClientHello server_name, group-count tallies them.
func TestTLSSNIConnectionCountsEndToEnd(t *testing.T) {
	e := newEngine(t)
	hosts := e.Topology().Hosts()
	server, client := hosts[2], hosts[14]

	srv, err := apps.StartTLS(e.Network(), server, apps.TLSConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	sess, err := e.Submit(fmt.Sprintf(
		"PARSE tls_sni FROM * TO %s:443 PROCESS (group-count: group=key)", server.Name))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	want := map[string]float64{
		"shop.example.com": 3,
		"api.example.com":  2,
		"cdn.example.com":  1,
	}
	for sni, n := range want {
		for i := 0; i < int(n); i++ {
			c, err := apps.DialTLS(e.Network(), client, server, 0, sni)
			if err != nil {
				t.Fatalf("DialTLS(%s): %v", sni, err)
			}
			if _, err := c.Request([]byte("ping"), time.Second); err != nil {
				t.Fatalf("Request: %v", err)
			}
			c.Close()
		}
	}
	srvCounts := srv.SNICounts()
	for sni, n := range want {
		if srvCounts[sni] != uint64(n) {
			t.Fatalf("server SNI counts = %v, want %v", srvCounts, want)
		}
	}

	counts := map[string]float64{}
	deadline := time.After(5 * time.Second)
	for counts["shop.example.com"] < 3 || counts["api.example.com"] < 2 || counts["cdn.example.com"] < 1 {
		select {
		case tu, ok := <-sess.Results():
			if !ok {
				t.Fatalf("results closed early: %v", counts)
			}
			counts[tu.Key] = tu.Val
		case <-deadline:
			t.Fatalf("timed out with counts %v (stats %+v)", counts, sess.MonitorStats())
		}
	}
	sess.Stop()
	for sni, n := range want {
		if counts[sni] != n {
			t.Errorf("per-SNI counts = %v, want %v", counts, want)
		}
	}
}
