package core

// Soak scenario: every registered application protocol runs through the full
// capture→parse→mq→stream pipeline at once, under a diurnal (sinusoidal)
// Zipf-skewed load curve, continuous query churn (sessions submitted and
// retired while traffic flows — the on-demand NFV tier scaling monitors up
// and down), and the same deterministic fault schedule the chaos harness
// uses. At the end the conservation ledger must balance for every protocol
// topic and nothing may leak: no goroutines, no mirror rules, no taps, no
// monitor instances.
//
// The test is Soak-named so CI's soak job selects it with -run TestSoak; the
// default horizon keeps `go test ./...` fast, and the CI job stretches it
// with `-args -soak=45s` (hours-scale runs just pass a bigger value). Set
// SOAK_LEDGER_FILE to append one JSON accounting line per run.

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"netalytics/internal/fault"
	"netalytics/internal/mq"
	"netalytics/internal/packet"
	"netalytics/internal/proto"
	"netalytics/internal/telemetry"
	"netalytics/internal/topology"
)

var soakDur = flag.Duration("soak", 0, "soak horizon (0 = short default for tier-1 runs)")

// soakProtocol is one protocol's slice of the soak: a steady-state frame
// pool cycled for the duration, and a generator of fresh-flow frames for the
// post-fault re-convergence probe (fresh flows so per-flow-deduplicating
// parsers like tls_sni still emit).
type soakProtocol struct {
	parser string
	port   uint16
	server *topology.Host
	frames [][]byte
	next   int
	fresh  func(i int) [][]byte
}

func (p *soakProtocol) nextFrame() []byte {
	f := p.frames[p.next]
	p.next = (p.next + 1) % len(p.frames)
	return f
}

// soakProtocols builds the six per-protocol workloads. Keys, names, and SNIs
// are drawn Zipf(1.2) over a 64-value space, so each protocol's key
// popularity is skewed the way production traffic is. Request/response
// protocols (resp, mysql) interleave the reply frame so the latency-pairing
// parsers emit.
func soakProtocols(servers, clients []*topology.Host, rng *rand.Rand) []*soakProtocol {
	var b packet.Builder
	zipf := rand.NewZipf(rng, 1.2, 1, 63)
	key := func() int { return int(zipf.Uint64()) }

	tcp := func(src, dst *topology.Host, sport, dport uint16, payload []byte) []byte {
		return b.TCP(packet.TCPSpec{
			Src: src.Addr, Dst: dst.Addr, SrcPort: sport, DstPort: dport,
			Flags: packet.TCPFlagACK | packet.TCPFlagPSH, Payload: payload,
		})
	}
	udp := func(src, dst *topology.Host, sport, dport uint16, payload []byte) []byte {
		return b.UDP(packet.UDPSpec{
			Src: src.Addr, Dst: dst.Addr, SrcPort: sport, DstPort: dport,
			Payload: payload,
		})
	}

	const pool = 256
	protos := []*soakProtocol{
		{parser: "http_get", port: 80, server: servers[0]},
		{parser: "memcached_get", port: 11211, server: servers[1]},
		{parser: "mysql_query", port: 3306, server: servers[2]},
		{parser: "resp_command", port: 6379, server: servers[3]},
		{parser: "dns_query", port: 53, server: servers[4]},
		{parser: "tls_sni", port: 443, server: servers[5]},
	}
	for _, p := range protos {
		p := p
		srv := p.server
		build := func(client *topology.Host, sport uint16, dnsID uint16) [][]byte {
			switch p.parser {
			case "http_get":
				return [][]byte{tcp(client, srv, sport, p.port,
					proto.BuildHTTPGet(fmt.Sprintf("/z%02d", key()), srv.Name))}
			case "memcached_get":
				return [][]byte{tcp(client, srv, sport, p.port,
					proto.BuildMemcachedGet(fmt.Sprintf("obj:%02d", key())))}
			case "mysql_query":
				return [][]byte{
					tcp(client, srv, sport, p.port,
						proto.BuildMySQLQuery(0, fmt.Sprintf("SELECT v FROM t WHERE id=%d", key()))),
					tcp(srv, client, p.port, sport, proto.BuildMySQLOK(1, nil)),
				}
			case "resp_command":
				return [][]byte{
					tcp(client, srv, sport, p.port,
						proto.BuildRESPCommand("GET", fmt.Sprintf("key:%02d", key()))),
					tcp(srv, client, p.port, sport, proto.BuildRESPBulk([]byte("v"))),
				}
			case "dns_query":
				return [][]byte{udp(client, srv, sport, p.port,
					proto.BuildDNSQuery(dnsID, fmt.Sprintf("h%02d.example.com", key()), proto.DNSTypeA))}
			case "tls_sni":
				return [][]byte{tcp(client, srv, sport, p.port,
					proto.BuildTLSClientHello(fmt.Sprintf("svc-%02d.example.com", key())))}
			}
			return nil
		}
		for i := 0; i < pool; i++ {
			p.frames = append(p.frames, build(clients[i%len(clients)], uint16(20000+i), uint16(i))...)
		}
		p.fresh = func(i int) [][]byte {
			return build(clients[i%len(clients)], uint16(30000+i%4096), uint16(0x8000+i%4096))
		}
	}
	return protos
}

// soakLedger is the run's conservation record, one JSON line appended to
// SOAK_LEDGER_FILE per run so CI can publish the accounting.
type soakLedger struct {
	Horizon        string            `json:"horizon"`
	Injected       uint64            `json:"injected"`
	Frames         uint64            `json:"frames"`
	FaultDrops     uint64            `json:"fault_drops"`
	Mirrored       uint64            `json:"mirrored"`
	TapDrops       uint64            `json:"tap_drops"`
	Delivered      uint64            `json:"delivered"`
	Crashes        uint64            `json:"crashes"`
	CrashLost      uint64            `json:"crash_lost"`
	Restarts       uint64            `json:"restarts"`
	ChurnCycles    int               `json:"churn_cycles"`
	TuplesByParser map[string]uint64 `json:"tuples_by_parser"`
	Results        uint64            `json:"results"`
}

func (l soakLedger) append(t *testing.T) {
	path := os.Getenv("SOAK_LEDGER_FILE")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Logf("soak ledger: %v", err)
		return
	}
	defer f.Close()
	line, _ := json.Marshal(l)
	f.Write(append(line, '\n'))
}

func TestSoakAllProtocols(t *testing.T) {
	horizon := 1500 * time.Millisecond
	if *soakDur > 0 {
		horizon = *soakDur
	}
	const seed = 42
	baseline := settleGoroutines(runtime.NumGoroutine(), 200*time.Millisecond)

	reg := telemetry.NewRegistry()
	inj := fault.NewInjector(seed, reg)
	topo := topology.MustNew(4)
	e := NewEngine(topo, Config{
		TickInterval:     20 * time.Millisecond,
		TraceSampleEvery: -1,
		ResultBuffer:     1 << 16,
		Seed:             seed,
		Metrics:          reg,
		Faults:           inj,
		MQ: mq.Config{
			Partitions:      2,
			ProduceRetries:  6,
			RetryBackoff:    200 * time.Microsecond,
			RetryBackoffMax: 5 * time.Millisecond,
		},
	})
	hosts := topo.Hosts()
	protos := soakProtocols(hosts[:6], hosts[8:12], rand.New(rand.NewSource(seed)))

	// One passthrough session per protocol: passthrough keeps the result
	// ledger 1:1 so conservation is checkable end to end per topic.
	type steady struct {
		proto   *soakProtocol
		sess    *Session
		results atomic.Uint64
		done    chan struct{}
	}
	steadies := make([]*steady, len(protos))
	for i, p := range protos {
		sess, err := e.Submit(fmt.Sprintf("PARSE %s FROM * TO %s:%d PROCESS (passthrough)",
			p.parser, p.server.Name, p.port))
		if err != nil {
			t.Fatalf("Submit %s: %v", p.parser, err)
		}
		st := &steady{proto: p, sess: sess, done: make(chan struct{})}
		go func() {
			defer close(st.done)
			for range sess.Results() {
				st.results.Add(1)
			}
		}()
		steadies[i] = st
	}

	// Deterministic fault schedule covering the whole horizon.
	events := int(horizon / (150 * time.Millisecond))
	if events < 10 {
		events = 10
	}
	spec := fault.Spec{
		Seed:             seed,
		Horizon:          horizon,
		Events:           events,
		Kinds:            fault.AllKinds(),
		LossRate:         0.2,
		Latency:          100 * time.Microsecond,
		ErrRate:          0.5,
		MaxFaultDuration: 250 * time.Millisecond,
	}
	runnerDone := make(chan struct{})
	go func() {
		defer close(runnerDone)
		inj.Run(fault.RealClock{}, spec.Schedule(), nil)
	}()

	// Query churn: while traffic flows, short-lived queries arrive and
	// retire, so the orchestrator keeps launching and tearing down monitor
	// instances (with their mirror rules and taps) under the same faults.
	// The churn query watches a port no soak traffic targets, so it perturbs
	// the control plane without touching the data-plane ledger.
	churnHost := hosts[6]
	churnDwell := horizon / 20
	if churnDwell < 25*time.Millisecond {
		churnDwell = 25 * time.Millisecond
	}
	if churnDwell > 250*time.Millisecond {
		churnDwell = 250 * time.Millisecond
	}
	start := time.Now()
	var churnCycles atomic.Int64
	var churnRestarts atomic.Uint64
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		for time.Since(start) < horizon {
			cs, err := e.Submit(fmt.Sprintf("PARSE tcp_flow_key FROM * TO %s:7070 PROCESS (passthrough)", churnHost.Name))
			if err != nil {
				t.Errorf("churn Submit: %v", err)
				return
			}
			time.Sleep(churnDwell)
			cs.Stop()
			churnRestarts.Add(cs.MonitorRestarts())
			if n := len(e.Controller().QueryRules(cs.ID)); n != 0 {
				t.Errorf("churned session leaked %d mirror rules", n)
			}
			churnCycles.Add(1)
		}
	}()

	// Diurnal load: the per-iteration burst follows one full sine period
	// over the horizon — the compressed day/night cycle — while frame
	// content follows each protocol's Zipf catalog. Inject is synchronous,
	// so every accepted frame is accounted by the time the loop exits.
	var injected uint64
	for time.Since(start) < horizon {
		phase := float64(time.Since(start)) / float64(horizon) * 2 * math.Pi
		burst := 1 + int(2.5*(1+math.Sin(phase)))
		for _, p := range protos {
			for j := 0; j < burst; j++ {
				if err := e.Network().Inject(p.nextFrame()); err != nil {
					t.Fatalf("Inject %s: %v", p.parser, err)
				}
				injected++
			}
		}
		time.Sleep(500 * time.Microsecond)
	}
	<-runnerDone
	<-churnDone
	if churnCycles.Load() == 0 {
		t.Error("no churn cycles completed")
	}

	// Failover coverage is mandatory: if the drawn schedule skipped
	// MonitorCrash, kill a monitor directly through the injector.
	if crashes, _ := e.Orchestrator().CrashStats(); crashes == 0 {
		inj.Apply(fault.Event{Kind: fault.MonitorCrash, Pick: seed})
	}
	crashes, crashLost := e.Orchestrator().CrashStats()
	if crashes == 0 {
		t.Fatal("soak finished without a monitor crash")
	}

	// Re-convergence: with faults cleared, every protocol session must keep
	// producing results on fresh flows with no operator intervention.
	pre := make([]uint64, len(steadies))
	for i, st := range steadies {
		pre[i] = st.results.Load()
	}
	convergeBy := time.Now().Add(10 * time.Second)
	for i := 0; ; i++ {
		stuck := ""
		for k, st := range steadies {
			if st.results.Load() == pre[k] {
				stuck = st.proto.parser
				break
			}
		}
		if stuck == "" {
			break
		}
		if !time.Now().Before(convergeBy) {
			t.Fatalf("%s did not re-converge after faults cleared", stuck)
		}
		for _, p := range protos {
			for _, f := range p.fresh(i) {
				if err := e.Network().Inject(f); err != nil {
					t.Fatalf("Inject: %v", err)
				}
				injected++
			}
		}
		time.Sleep(2 * time.Millisecond)
	}

	var delivered, restarts, results uint64
	for _, st := range steadies {
		st.sess.Stop()
		<-st.done
		delivered += st.sess.Packets()
		restarts += st.sess.MonitorRestarts()
		results += st.results.Load()
	}
	restarts += churnRestarts.Load()

	vst := e.Network().Stats()
	led := soakLedger{
		Horizon:        horizon.String(),
		Injected:       injected,
		Frames:         vst.Frames,
		FaultDrops:     vst.FaultDrops,
		Mirrored:       vst.Mirrored,
		TapDrops:       vst.TapDrops,
		Delivered:      delivered,
		Crashes:        crashes,
		CrashLost:      crashLost,
		Restarts:       restarts,
		ChurnCycles:    int(churnCycles.Load()),
		TuplesByParser: map[string]uint64{},
		Results:        results,
	}

	// Global frame conservation: (1) a frame is forwarded or dropped by an
	// injected fault; (2) a mirrored copy reaches a monitor or dies with a
	// crashed tap.
	if led.Injected != led.Frames+led.FaultDrops {
		t.Errorf("frame ledger: injected %d != frames %d + fault drops %d",
			led.Injected, led.Frames, led.FaultDrops)
	}
	if led.Mirrored != led.Delivered+led.CrashLost {
		t.Errorf("mirror ledger: mirrored %d != delivered %d + crash lost %d",
			led.Mirrored, led.Delivered, led.CrashLost)
	}
	if restarts != crashes {
		t.Errorf("monitor restarts = %d, want %d (one failover per crash)", restarts, crashes)
	}

	// Per-protocol tuple conservation through the mq and stream tiers.
	for _, st := range steadies {
		p := st.proto.parser
		mon := st.sess.MonitorStats()
		ts := e.Aggregation().Stats(st.sess.ID + "/" + p)
		led.TuplesByParser[p] = mon.Tuples
		if mon.Received != st.sess.Packets() {
			t.Errorf("%s: monitor received %d, pumps delivered %d", p, mon.Received, st.sess.Packets())
		}
		if mon.Tuples != ts.AppendedTuples+ts.DroppedTuples {
			t.Errorf("%s: parsed %d != appended %d + dropped %d", p, mon.Tuples, ts.AppendedTuples, ts.DroppedTuples)
		}
		if ts.Attempts != ts.Appended+ts.Dropped {
			t.Errorf("%s: attempts %d != appended %d + dropped %d batches", p, ts.Attempts, ts.Appended, ts.Dropped)
		}
		if ts.ConsumedTuples != ts.AppendedTuples || ts.Buffered != 0 {
			t.Errorf("%s: consumed %d / appended %d, buffered %d", p, ts.ConsumedTuples, ts.AppendedTuples, ts.Buffered)
		}
		if got := st.results.Load() + st.sess.ResultDrops(); got != ts.ConsumedTuples {
			t.Errorf("%s: results %d + drops %d != consumed %d", p, st.results.Load(), st.sess.ResultDrops(), ts.ConsumedTuples)
		}
		if mon.Tuples == 0 {
			t.Errorf("%s: soak produced no tuples", p)
		}
		if n := len(e.Controller().QueryRules(st.sess.ID)); n != 0 {
			t.Errorf("%s: session leaked %d mirror rules", p, n)
		}
	}
	led.append(t)

	// Nothing left behind: no monitor instances, no taps, no goroutines.
	if n := e.Orchestrator().InstanceCount(); n != 0 {
		t.Errorf("leaked %d monitor instances", n)
	}
	if n := e.Network().TapCount(); n != 0 {
		t.Errorf("leaked %d taps", n)
	}
	e.Close()
	if n := settleGoroutines(baseline, 5*time.Second); n > baseline {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutine leak: %d running, baseline %d\n%s", n, baseline, buf[:runtime.Stack(buf, true)])
	}
}
