package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"netalytics/internal/monitor"
	"netalytics/internal/mq"
	"netalytics/internal/nfv"
	"netalytics/internal/parsers"
	"netalytics/internal/placement"
	"netalytics/internal/query"
	"netalytics/internal/sdn"
	"netalytics/internal/stream"
	"netalytics/internal/telemetry"
	"netalytics/internal/topology"
	"netalytics/internal/tuple"
)

// drainTimeout bounds how long Stop waits for buffered aggregation data to
// flow through the processing topology before halting it.
const drainTimeout = 2 * time.Second

// Session is one running query.
type Session struct {
	ID    string
	Query *query.Query

	engine *Engine

	instances  []*nfv.Instance
	sharedSubs []*sharedSub // shared-tap mode: one subscription per host
	executors  []*stream.Executor
	samplers   []*monitor.AIMDSampler
	// sampleTargets parallels samplers: the control point each one drives
	// (a dedicated Monitor, or this query's DemuxSub on a shared monitor).
	sampleTargets []monitor.SampleTarget
	adaptive      *adaptiveSampler // non-nil when Config.AdaptiveSample engaged
	topics        []string
	finalTopics   map[string]mq.TopicStats // topic stats frozen at Stop (guarded by failMu)
	tracer        *telemetry.Tracer

	// failMu guards the monitor roster (instances, samplers, slots) against
	// concurrent mutation by monitor failover. Readers that walk the roster
	// take it; handleMonitorCrash swaps entries under it; Stop sets stopped
	// under it so no zombie relaunch can race teardown.
	failMu   sync.Mutex
	stopped  bool
	slots    []*monitorSlot
	restarts *telemetry.Counter // nfv_restarts{session=ID}

	results     chan tuple.Tuple
	resultDrops atomic.Uint64 // exported as session_result_drops{session=ID}
	packets     atomic.Uint64 // frames delivered to monitors (all instances)

	fbStop   chan struct{}
	fbWG     sync.WaitGroup
	stopOnce sync.Once
	done     chan struct{}
}

// Results streams processed tuples to the caller. The channel closes when
// the session stops. For top-k processors, decode entries with
// stream.DecodeRankings.
func (s *Session) Results() <-chan tuple.Tuple { return s.results }

// Done is closed when the session has fully stopped.
func (s *Session) Done() <-chan struct{} { return s.done }

// Packets returns the number of mirrored frames delivered to the session's
// monitors. In shared-tap mode it is the frames its shared monitors pumped
// while this session was subscribed (deltas against attach-time baselines) —
// overlapping queries on the same host observe the same shared stream.
func (s *Session) Packets() uint64 {
	s.failMu.Lock()
	defer s.failMu.Unlock()
	if len(s.sharedSubs) > 0 {
		var total uint64
		for _, ss := range s.sharedSubs {
			total += ss.mon.counter.Load() - ss.baseline
		}
		return total
	}
	return s.packets.Load()
}

// ResultDrops returns results discarded because the caller fell behind.
func (s *Session) ResultDrops() uint64 { return s.resultDrops.Load() }

// monitorSlot is the durable record of one monitor placement: everything the
// session needs to recreate the monitor and its mirror rules after a crash —
// the launch spec (host, parsers, shared counter) and the matches whose rules
// currently point at the slot, with their live rule IDs.
type monitorSlot struct {
	host    *topology.Host
	spec    nfv.Spec
	matches []sdn.Match
	ruleIDs []uint64
}

// MonitorCount returns how many NFV monitors serve the query: dedicated
// instances in legacy mode, subscribed shared monitors in shared-tap mode.
func (s *Session) MonitorCount() int {
	s.failMu.Lock()
	defer s.failMu.Unlock()
	if len(s.sharedSubs) > 0 {
		return len(s.sharedSubs)
	}
	return len(s.instances)
}

// MonitorRestarts returns how many monitor failovers the session performed.
func (s *Session) MonitorRestarts() uint64 { return s.restarts.Value() }

// MonitorHosts returns the hosts running this session's monitors (dedicated
// or shared).
func (s *Session) MonitorHosts() []*topology.Host {
	s.failMu.Lock()
	defer s.failMu.Unlock()
	if len(s.sharedSubs) > 0 {
		hosts := make([]*topology.Host, len(s.sharedSubs))
		for i, ss := range s.sharedSubs {
			hosts[i] = ss.mon.host
		}
		return hosts
	}
	hosts := make([]*topology.Host, len(s.instances))
	for i, in := range s.instances {
		hosts[i] = in.Host
	}
	return hosts
}

// SampleRates returns the session's current sampling rates: per dedicated
// monitor in legacy mode, per demux subscription in shared-tap mode (the
// shared monitor itself runs at the max over its subscribers).
func (s *Session) SampleRates() []float64 {
	s.failMu.Lock()
	defer s.failMu.Unlock()
	if len(s.sharedSubs) > 0 {
		rates := make([]float64, len(s.sharedSubs))
		for i, ss := range s.sharedSubs {
			rates[i] = ss.sub.SampleRate()
		}
		return rates
	}
	rates := make([]float64, len(s.instances))
	for i, in := range s.instances {
		rates[i] = in.Monitor.SampleRate()
	}
	return rates
}

// MonitorStats aggregates the session's monitor counters. The counters are
// registry-backed and label-addressed, so a failover replacement on the same
// host resumes the same series: the aggregate stays cumulative across
// restarts.
func (s *Session) MonitorStats() monitor.Stats {
	s.failMu.Lock()
	defer s.failMu.Unlock()
	var total monitor.Stats
	instances := s.instances
	if len(s.sharedSubs) > 0 {
		// Shared-tap mode: the stats of every shared monitor this session
		// subscribes to. Those monitors carry all subscribers' traffic, so
		// the aggregate describes the shared datapath, not one query's slice.
		instances = make([]*nfv.Instance, 0, len(s.sharedSubs))
		for _, ss := range s.sharedSubs {
			if in := ss.mon.inst.Load(); in != nil {
				instances = append(instances, in)
			}
		}
	}
	for _, in := range instances {
		st := in.Monitor.Stats()
		total.Received += st.Received
		total.CollectDrops += st.CollectDrops
		total.Sampled += st.Sampled
		total.Malformed += st.Malformed
		total.Dispatched += st.Dispatched
		total.ParserDrops += st.ParserDrops
		total.Tuples += st.Tuples
		total.Batches += st.Batches
		total.SinkErrors += st.SinkErrors
	}
	return total
}

// start compiles and launches the query. Called once by SubmitQuery.
func (s *Session) start() error {
	e := s.engine
	s.restarts = e.cfg.Metrics.Counter("nfv_restarts", telemetry.L("session", s.ID))
	specs, err := e.compileMatches(s.Query)
	if err != nil {
		return err
	}

	// Placement: anchor flows at the concrete hosts of each match so
	// monitors land under covering ToR switches.
	flows := make([]placement.Flow, len(specs))
	for i, spec := range specs {
		src, dst := spec.srcHost, spec.dstHost
		if src == nil {
			src = spec.anchor
		}
		if dst == nil {
			dst = spec.anchor
		}
		flows[i] = placement.Flow{Src: src, Dst: dst}
	}

	// Topics: one per parser, namespaced by session.
	sink := &routingSink{producers: make(map[string]*mq.Producer, len(s.Query.Parsers))}
	for _, p := range s.Query.Parsers {
		topic := s.ID + "/" + p
		s.topics = append(s.topics, topic)
		sink.producers[p] = e.mq.Producer(topic)
	}

	// Monitors: one per placed monitor host, running every query parser.
	factories := make([]monitor.Factory, 0, len(s.Query.Parsers))
	for _, name := range s.Query.Parsers {
		f, err := parsers.Lookup(name)
		if err != nil {
			return err
		}
		factories = append(factories, f)
	}
	sampleRate := 1.0
	if s.Query.Sample.Mode == query.SampleRate {
		sampleRate = s.Query.Sample.Rate
	}

	// Telemetry: every layer of this session reports into the engine
	// registry under a session label; the tracer stamps 1-in-N tuples at
	// monitor emit so Telemetry() can digest per-stage latencies.
	reg := e.cfg.Metrics
	sessLabel := telemetry.L("session", s.ID)
	// TraceSampleEvery is resolved by Config.withDefaults (SamplePeriod
	// contract): positive period or 0 for off.
	s.tracer = telemetry.NewTracer(reg, e.cfg.TraceSampleEvery, sessLabel)
	reg.GaugeFunc("session_result_drops", func() float64 { return float64(s.resultDrops.Load()) }, sessLabel)

	if e.cfg.SharedTaps && s.Query.Limit.Packets == 0 {
		// Shared-tap control plane: attach to (or launch) the shared monitor
		// of each covering host and install refcounted mirror rules. Queries
		// with a packet LIMIT stay on the legacy path — a shared monitor's
		// frame counter cannot be attributed to one query.
		if err := s.startShared(specs, flows, factories, sink, sampleRate); err != nil {
			return err
		}
	} else if err := s.startDedicated(specs, flows, factories, sink, sampleRate, reg, sessLabel); err != nil {
		return err
	}

	// Stream topologies: one executor per PROCESS entry, fed by spouts
	// polling every session topic. Each processor gets its own consumer
	// group, so several PROCESS entries all see the full data stream.
	for procIdx, proc := range s.Query.Processors {
		spec := stream.ProcessorSpec{Name: proc.Name, Args: proc.Args}
		topicsCopy := append([]string(nil), s.topics...)
		group := fmt.Sprintf("%s-proc%d", s.ID, procIdx)
		// Register the group before any monitor traffic flows so no early
		// batches are missed.
		for _, topic := range topicsCopy {
			e.mq.GroupConsumer(topic, group)
		}
		// Partition-to-core affinity: spout task k starts its ring scans at
		// shard k, so co-scheduled spouts drain "their" producers' shards
		// first instead of all contending on ring 0 (no-op on legacy path).
		var spoutSeq atomic.Uint64
		spoutFactory := func() stream.Spout {
			consumers := make([]stream.BatchPoller, len(topicsCopy))
			hint := int(spoutSeq.Add(1) - 1)
			for i, topic := range topicsCopy {
				cs := e.mq.GroupConsumer(topic, group)
				cs.SetShardAffinity(hint)
				consumers[i] = cs
			}
			return &multiSpout{pollers: consumers}
		}
		topo, err := stream.BuildTopologyOpts(spec, spoutFactory, e.cfg.SpoutParallelism, s.deliver, e.cfg.TickInterval,
			stream.TopologyOptions{
				Sketch:             e.cfg.SketchAnalytics,
				SketchTopKCapacity: e.cfg.SketchTopKCapacity,
			})
		if err != nil {
			return err
		}
		procLabel := telemetry.L("proc", fmt.Sprintf("proc%d-%s", procIdx, proc.Name))
		ex, err := stream.NewExecutor(topo,
			stream.WithTickInterval(e.cfg.TickInterval),
			stream.WithBatchSize(e.cfg.StreamBatchSize),
			stream.WithMetrics(reg, sessLabel, procLabel))
		if err != nil {
			return err
		}
		ex.Start()
		s.executors = append(s.executors, ex)
		// Tuples in flight inside the topology (queued between tasks or
		// executing), not channel occupancy — see Executor.QueueLag.
		reg.GaugeFunc("stream_queue_lag", func() float64 { return float64(ex.QueueLag()) },
			sessLabel, procLabel)
	}

	// Feedback-driven sampling (§4.2): aggregation-layer overload statuses
	// drive every monitor's AIMD controller.
	s.fbStop = make(chan struct{})
	if s.Query.Sample.Mode == query.SampleAuto {
		for _, tgt := range s.rateTargets() {
			s.samplers = append(s.samplers, monitor.NewAIMDSampler(tgt))
			s.sampleTargets = append(s.sampleTargets, tgt)
		}
		for _, topic := range s.topics {
			statusCh := e.mq.Subscribe(topic)
			s.fbWG.Add(1)
			go s.feedbackLoop(topic, statusCh)
		}
	}

	// Adaptive sampling: queries that didn't pin a SAMPLE policy get the
	// occupancy-driven controller when the deployment enables it (SAMPLE auto
	// keeps the legacy status-driven loop; fixed rates are respected as-is).
	if e.cfg.AdaptiveSample && s.Query.Sample.Mode == query.SampleAll {
		s.adaptive = newAdaptiveSampler(s)
		s.fbWG.Add(1)
		go s.adaptive.run(s.fbStop, 2*e.cfg.TickInterval)
	}

	// LIMIT: stop after the duration elapses (packet limits are enforced
	// inline by pump).
	if d := s.Query.Limit.Duration; d > 0 {
		s.fbWG.Add(1)
		go func() {
			defer s.fbWG.Done()
			select {
			case <-time.After(d):
				go s.Stop()
			case <-s.fbStop:
			}
		}()
	}
	return nil
}

// rateTargets lists the session's sampling control points: each dedicated
// monitor in legacy mode, each demux subscription in shared-tap mode (where
// the shared monitor itself runs at the max over its subscribers, and each
// query thins its own stream at the demux). Caller either holds failMu or is
// still inside start (rosters are fixed by then).
func (s *Session) rateTargets() []monitor.SampleTarget {
	if len(s.sharedSubs) > 0 {
		out := make([]monitor.SampleTarget, len(s.sharedSubs))
		for i, ss := range s.sharedSubs {
			out[i] = ss.sub
		}
		return out
	}
	out := make([]monitor.SampleTarget, len(s.instances))
	for i, in := range s.instances {
		out[i] = in.Monitor
	}
	return out
}

// startDedicated is the legacy control plane: one monitor NF per placed host
// owned by this session, with exclusive mirror rules recorded per slot for
// crash failover.
func (s *Session) startDedicated(specs []matchSpec, flows []placement.Flow,
	factories []monitor.Factory, sink monitor.Sink, sampleRate float64,
	reg *telemetry.Registry, sessLabel telemetry.Label) error {

	e := s.engine
	rng := randFor(e.cfg.Seed, s.ID)
	place, err := placement.Place(e.topo, flows, e.cfg.Policy, e.cfg.PlacementParams, rng)
	if err != nil {
		return err
	}

	for _, proc := range place.Monitors {
		launchSpec := nfv.Spec{
			Host: proc.Host,
			Config: monitor.Config{
				Parsers: factories,
				// With sharded ingest, each monitor runs one collector per
				// shard and idle collectors steal bursts from hot ones.
				Collectors:       e.cfg.IngestShards,
				WorkSteal:        e.cfg.IngestShards > 1,
				WorkersPerParser: e.cfg.MonitorWorkers,
				Sink:             sink,
				SampleRate:       sampleRate,
				Metrics:          reg,
				MetricLabels:     []telemetry.Label{sessLabel, telemetry.L("host", proc.Host.Name)},
				Tracer:           s.tracer,
			},
			Counter:      &s.packets,
			PacketLimit:  uint64(s.Query.Limit.Packets),
			OnLimit:      func() { go s.Stop() },
			Metrics:      reg,
			MetricLabels: []telemetry.Label{sessLabel},
		}
		in, err := e.nfv.Launch(s.ID, launchSpec)
		if err != nil {
			return err
		}
		s.instances = append(s.instances, in)
		// Retain the spec so monitor failover can relaunch an identical
		// instance on the same host (same parsers, sink and shared counter).
		s.slots = append(s.slots, &monitorSlot{host: proc.Host, spec: launchSpec})
	}

	// SDN rules: mirror each match (and its reverse, so monitors see both
	// directions of the flows) at the assigned monitor's ToR switch. Each
	// slot records its matches and live rule IDs so failover can retire and
	// re-install exactly the rules pointing at a crashed monitor.
	for i, spec := range specs {
		slot := s.slots[place.FlowMonitor[i]]
		for _, m := range []sdn.Match{spec.match, spec.match.Reverse()} {
			id := e.ctrl.InstallMirror(s.ID, slot.host.Edge, m, slot.host.ID, 100)
			slot.matches = append(slot.matches, m)
			slot.ruleIDs = append(slot.ruleIDs, id)
		}
	}
	return nil
}

// startShared is the shared-tap control plane: the incremental planner lands
// each match's flows on an existing shared monitor when one covers them
// (residuals get fresh placements), the session subscribes to each chosen
// host's demux with its match filter, and refcounted mirror rules merge with
// any other query demanding the same (switch, match, tap). The session holds
// no rule IDs: Stop's RemoveQuery releases its ownership share of every rule,
// and the controller uninstalls only those left ownerless.
func (s *Session) startShared(specs []matchSpec, flows []placement.Flow,
	factories []monitor.Factory, sink monitor.Sink, sampleRate float64) error {

	e := s.engine
	existing, hosts := e.shared.existing()
	assign, residual := placement.Incremental(existing, flows, e.cfg.PlacementParams)
	hostFor := make([]*topology.Host, len(flows))
	for i, mi := range assign {
		if mi >= 0 {
			hostFor[i] = hosts[mi]
		}
	}
	if len(residual) > 0 {
		resFlows := make([]placement.Flow, len(residual))
		for j, fi := range residual {
			resFlows[j] = flows[fi]
		}
		rng := randFor(e.cfg.Seed, s.ID)
		place, err := placement.Place(e.topo, resFlows, e.cfg.Policy, e.cfg.PlacementParams, rng)
		if err != nil {
			return err
		}
		for j, fi := range residual {
			hostFor[fi] = place.Monitors[place.FlowMonitor[j]].Host
		}
	}

	// One subscription per distinct host, filtering on the union of the
	// matches (and reverses) whose flows landed there — a tuple reaches this
	// session exactly when one of its own mirror demands admits it, even
	// when the shared monitor also carries other queries' traffic.
	byHost := make(map[topology.NodeID][]sdn.Match)
	hostOf := make(map[topology.NodeID]*topology.Host)
	order := make([]topology.NodeID, 0, len(flows))
	for i, spec := range specs {
		h := hostFor[i]
		if _, seen := byHost[h.ID]; !seen {
			order = append(order, h.ID)
			hostOf[h.ID] = h
		}
		byHost[h.ID] = append(byHost[h.ID], spec.match, spec.match.Reverse())
	}

	for _, hid := range order {
		h := hostOf[hid]
		matches := byHost[hid]
		sub, err := e.shared.acquire(s, h, matches, factories, s.Query.Parsers, sink, sampleRate)
		if err != nil {
			return err
		}
		s.sharedSubs = append(s.sharedSubs, sub)
		for _, m := range matches {
			e.ctrl.InstallSharedMirror(s.ID, h.Edge, m, h.ID, 100)
		}
	}
	return nil
}

// handleMonitorCrash is the failover path, invoked (synchronously, on the
// crashing goroutine) by the orchestrator's crash callback after the dead
// instance has been removed and torn down. It retires the SDN mirror rules
// that pointed at the dead monitor, relaunches an identical instance on the
// same host from the slot's retained spec, swaps it into the roster (with a
// fresh AIMD sampler when feedback sampling is active), and re-installs the
// mirror rules — so the query resumes producing results without operator
// intervention. No-op once the session is stopping: Stop owns teardown then.
func (s *Session) handleMonitorCrash(dead *nfv.Instance) {
	e := s.engine
	s.failMu.Lock()
	defer s.failMu.Unlock()
	if s.stopped {
		return
	}
	idx := -1
	for i, in := range s.instances {
		if in == dead {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	slot := s.slots[idx]
	for _, id := range slot.ruleIDs {
		e.ctrl.RemoveRule(slot.host.Edge, id)
	}
	in, err := e.nfv.Launch(s.ID, slot.spec)
	if err != nil {
		// Relaunch can only fail on a config the original launch accepted;
		// leave the slot dark rather than crash the pipeline.
		return
	}
	s.instances[idx] = in
	if idx < len(s.samplers) {
		s.samplers[idx] = monitor.NewAIMDSampler(in.Monitor)
		s.sampleTargets[idx] = in.Monitor
	}
	slot.ruleIDs = slot.ruleIDs[:0]
	for _, m := range slot.matches {
		slot.ruleIDs = append(slot.ruleIDs, e.ctrl.InstallMirror(s.ID, slot.host.Edge, m, slot.host.ID, 100))
	}
	s.restarts.Add(1)
}

// feedbackLoop applies aggregation-layer statuses to all samplers. When
// every monitor has already hit the AIMD floor and overload persists, the
// feedback escalates to the SDN controller (§4.2): mirror rules themselves
// start sampling flows at the switch, cutting the target→monitor bandwidth
// too. Recovery relaxes the rule-level sampling before the monitors'.
func (s *Session) feedbackLoop(topic string, statusCh <-chan mq.Status) {
	defer s.fbWG.Done()
	ruleRate := 1.0
	apply := func(overloaded bool) {
		// Under failMu: failover may swap instances/samplers concurrently.
		s.failMu.Lock()
		defer s.failMu.Unlock()
		if overloaded && s.allSamplersFloored() {
			ruleRate /= 2
			if ruleRate < 0.05 {
				ruleRate = 0.05
			}
			s.engine.ctrl.SetQuerySampling(s.ID, ruleRate)
			return
		}
		if !overloaded && ruleRate < 1 {
			ruleRate += 0.1
			if ruleRate > 1 {
				ruleRate = 1
			}
			s.engine.ctrl.SetQuerySampling(s.ID, ruleRate)
		}
		for _, a := range s.samplers {
			a.OnStatus(overloaded)
		}
	}
	// Transition statuses react immediately; the ticker re-observes the
	// aggregator's occupancy continuously, as the paper's aggregation layer
	// does, so sampling keeps adapting between transitions.
	ticker := time.NewTicker(4 * s.engine.cfg.TickInterval)
	defer ticker.Stop()
	hw := s.engine.mq.HighWatermark()
	for {
		select {
		case st := <-statusCh:
			apply(st.Overloaded)
		case <-ticker.C:
			occ := s.engine.mq.Pressure(topic)
			switch {
			case occ >= hw:
				apply(true)
			case occ <= hw/2:
				apply(false)
			}
		case <-s.fbStop:
			return
		}
	}
}

// allSamplersFloored reports whether every sampling control point is already
// at the AIMD floor, i.e. local sampling is exhausted. Caller holds failMu.
func (s *Session) allSamplersFloored() bool {
	if len(s.samplers) == 0 {
		return false
	}
	for i, a := range s.samplers {
		if s.sampleTargets[i].SampleRate() > a.MinRate+1e-9 {
			return false
		}
	}
	return true
}

// deliver pushes a processed tuple to the session's result channel,
// dropping when the consumer lags. Traced tuples complete their latency
// record here: delivery is the sink boundary.
func (s *Session) deliver(t tuple.Tuple) {
	if t.Trace != nil {
		s.tracer.ObserveSink(t.Trace, time.Now().UnixNano())
	}
	select {
	case s.results <- t:
	default:
		s.resultDrops.Add(1)
	}
}

// Stop tears the session down in pipeline order: uninstall mirror rules,
// close taps, stop monitors (flushing final batches), drain the aggregation
// topics through the processors, then halt the topologies and close the
// result stream. Stop is idempotent and safe to call concurrently.
func (s *Session) Stop() {
	s.stopOnce.Do(func() {
		e := s.engine
		// Close the failover window first: a monitor crash arriving from here
		// on must not relaunch anything Stop is about to reclaim.
		s.failMu.Lock()
		s.stopped = true
		s.failMu.Unlock()
		// RemoveQuery releases this session's ownership share of every mirror
		// rule; shared rules survive while other queries still own them.
		e.ctrl.RemoveQuery(s.ID)
		e.nfv.StopQuery(s.ID)
		for _, ss := range s.sharedSubs {
			e.shared.detach(ss)
		}
		if s.fbStop != nil {
			close(s.fbStop)
		}
		s.fbWG.Wait()

		s.drainTopics()
		for _, ex := range s.executors {
			ex.Stop()
		}
		// Shared-taps deployments retire the session's topics, freezing their
		// final stats first so Telemetry() keeps reporting them after the
		// cluster forgets the topic. Without this a long-lived cluster
		// accumulates one dead topic (and its registry series) per query ever
		// run. The legacy mode keeps its historical leave-in-place behavior —
		// post-stop Stats lookups on the cluster still see the topic.
		if e.cfg.SharedTaps {
			final := make(map[string]mq.TopicStats, len(s.topics))
			for _, topic := range s.topics {
				final[topic] = e.mq.Stats(topic)
				e.mq.DeleteTopic(topic)
			}
			s.failMu.Lock()
			s.finalTopics = final
			s.failMu.Unlock()
		}
		close(s.results)
		close(s.done)

		e.mu.Lock()
		delete(e.sessions, s.ID)
		e.mu.Unlock()

		// Retire the session's registry series so long-lived processes don't
		// accumulate dead metrics; Telemetry() keeps working from the layer
		// pointers the session still holds.
		e.cfg.Metrics.DropLabeled("session", s.ID)
	})
}

// drainTopics waits (bounded) for the processors to consume everything the
// monitors shipped, so final windows include all data.
func (s *Session) drainTopics() {
	deadline := time.Now().Add(drainTimeout)
	for time.Now().Before(deadline) {
		drained := true
		for _, topic := range s.topics {
			st := s.engine.mq.Stats(topic)
			if st.Buffered > 0 {
				drained = false
				break
			}
		}
		if drained {
			// One extra tick so windowed bolts flush downstream — capped so a
			// long-tick deployment doesn't stall Stop for a whole window (the
			// executors' Cleanup pass flushes final windows regardless).
			extra := s.engine.cfg.TickInterval
			if extra > 100*time.Millisecond {
				extra = 100 * time.Millisecond
			}
			time.Sleep(extra)
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// routingSink routes monitor output batches to per-parser topics.
type routingSink struct {
	producers map[string]*mq.Producer
}

// Deliver implements monitor.Sink.
func (r *routingSink) Deliver(b *tuple.Batch) error {
	p, ok := r.producers[b.Parser]
	if !ok {
		return fmt.Errorf("core: no topic for parser %q", b.Parser)
	}
	return p.Send(b)
}

// multiSpout polls several topic consumers round-robin.
type multiSpout struct {
	pollers []stream.BatchPoller
	next    int
}

// Next implements stream.Spout. The poll is the mq→stream boundary: any
// traced tuples in the polled batches get their produce/consume stamps here
// (cloned per consumer group, since batches are shared read-only).
func (m *multiSpout) Next() []tuple.Tuple {
	for range m.pollers {
		p := m.pollers[m.next%len(m.pollers)]
		m.next++
		if batches := p.Poll(16); len(batches) > 0 {
			return flattenStamped(batches)
		}
	}
	return nil
}

// NextWait implements stream.WaitSpout: an idle executor parks here instead
// of sleep-retrying Next. Each consumer gets a slice of the timeout; mq
// consumers park in their wakeup-driven PollWait, so with the usual single
// topic a new batch wakes the spout within a scheduler hop.
func (m *multiSpout) NextWait(timeout time.Duration) []tuple.Tuple {
	per := timeout
	if len(m.pollers) > 1 {
		per = timeout / time.Duration(len(m.pollers))
		if per < time.Millisecond {
			per = time.Millisecond
		}
	}
	deadline := time.Now().Add(timeout)
	for {
		p := m.pollers[m.next%len(m.pollers)]
		m.next++
		if wp, ok := p.(stream.WaitPoller); ok {
			if batches := wp.PollWait(16, per); len(batches) > 0 {
				return flattenStamped(batches)
			}
		} else {
			if batches := p.Poll(16); len(batches) > 0 {
				return flattenStamped(batches)
			}
			time.Sleep(per)
		}
		if !time.Now().Before(deadline) {
			return nil
		}
	}
}

// flattenStamped copies polled batches into one tuple slice, stamping the
// ConsumeNS of any sampled traces at batch granularity (one clock read per
// poll) with per-trace clones preserved by PropagateBatch.
func flattenStamped(batches []*tuple.Batch) []tuple.Tuple {
	n := 0
	for _, b := range batches {
		n += len(b.Tuples)
	}
	out := make([]tuple.Tuple, 0, n)
	var nowNS int64
	for _, b := range batches {
		start := len(out)
		out = append(out, b.Tuples...)
		if b.ProduceNS != 0 {
			if nowNS == 0 {
				nowNS = time.Now().UnixNano()
			}
			telemetry.PropagateBatch(out[start:], b.ProduceNS, nowNS)
		}
	}
	return out
}

// randFor derives a deterministic rng per session.
func randFor(seed int64, id string) *rand.Rand {
	h := int64(0)
	for _, c := range id {
		h = h*31 + int64(c)
	}
	return rand.New(rand.NewSource(seed ^ h))
}
