package core

// Chaos soak harness: the full capture→parse→mq→stream pipeline runs under a
// deterministic, seed-driven fault schedule (link loss, latency, pod
// partitions, mq outages, monitor crashes) and must come out balanced. Every
// frame and tuple is accounted for by the conservation ledger below — a
// fault may drop data, but only into a counted bucket — and the pipeline
// must re-converge (keep producing results) after every fault clears,
// including monitor crashes answered by session failover. The tests are
// Chaos-named so CI's dedicated chaos job selects them with -run Chaos; set
// CHAOS_LEDGER_FILE to append one JSON ledger line per seed.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"netalytics/internal/fault"
	"netalytics/internal/mq"
	"netalytics/internal/packet"
	"netalytics/internal/proto"
	"netalytics/internal/stream"
	"netalytics/internal/telemetry"
	"netalytics/internal/topology"
	"netalytics/internal/tuple"
)

// chaosLedger is one soak's conservation record, written (one JSON line per
// seed) to CHAOS_LEDGER_FILE so CI can publish the tuple accounting.
type chaosLedger struct {
	Seed           int64  `json:"seed"`
	Injected       uint64 `json:"injected"`
	Frames         uint64 `json:"frames"`
	FaultDrops     uint64 `json:"fault_drops"`
	Mirrored       uint64 `json:"mirrored"`
	TapDrops       uint64 `json:"tap_drops"`
	Delivered      uint64 `json:"delivered"`
	Crashes        uint64 `json:"crashes"`
	CrashLost      uint64 `json:"crash_lost"`
	Restarts       uint64 `json:"restarts"`
	MonitorTuples  uint64 `json:"monitor_tuples"`
	MQRetries      uint64 `json:"mq_retries"`
	AppendedTuples uint64 `json:"appended_tuples"`
	DroppedTuples  uint64 `json:"dropped_tuples"`
	ConsumedTuples uint64 `json:"consumed_tuples"`
	Results        uint64 `json:"results"`
	ResultDrops    uint64 `json:"result_drops"`
}

func (l chaosLedger) append(t *testing.T) {
	path := os.Getenv("CHAOS_LEDGER_FILE")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Logf("chaos ledger: %v", err)
		return
	}
	defer f.Close()
	line, _ := json.Marshal(l)
	f.Write(append(line, '\n'))
}

// settleGoroutines polls until the goroutine count drops to at most limit,
// reporting the final count. Used for both the pre-soak baseline (letting
// earlier tests' stragglers exit) and the post-soak leak check.
func settleGoroutines(limit int, wait time.Duration) int {
	deadline := time.Now().Add(wait)
	n := runtime.NumGoroutine()
	for n > limit && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

func TestChaosSoak(t *testing.T) {
	for _, seed := range []int64{11, 23, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { chaosSoak(t, seed) })
	}
}

func chaosSoak(t *testing.T, seed int64) {
	baseline := settleGoroutines(runtime.NumGoroutine(), 200*time.Millisecond)

	reg := telemetry.NewRegistry()
	inj := fault.NewInjector(seed, reg)
	topo := topology.MustNew(4)
	e := NewEngine(topo, Config{
		TickInterval:     20 * time.Millisecond,
		TraceSampleEvery: -1,
		ResultBuffer:     1 << 16,
		Seed:             seed,
		Metrics:          reg,
		Faults:           inj,
		MQ: mq.Config{
			Partitions:      2,
			ProduceRetries:  6,
			RetryBackoff:    200 * time.Microsecond,
			RetryBackoffMax: 5 * time.Millisecond,
		},
	})
	hosts := topo.Hosts()
	server, clients := hosts[0], hosts[8:12]

	sess, err := e.Submit(fmt.Sprintf("PARSE http_get FROM * TO %s:80 PROCESS (passthrough)", server.Name))
	if err != nil {
		t.Fatal(err)
	}
	topic := sess.ID + "/http_get"

	var results atomic.Uint64
	resultsDone := make(chan struct{})
	go func() {
		defer close(resultsDone)
		for range sess.Results() {
			results.Add(1)
		}
	}()

	// The fault schedule is a pure function of the spec: same seed, same
	// faults, in the same order at the same offsets.
	spec := fault.Spec{
		Seed:             seed,
		Horizon:          1500 * time.Millisecond,
		Events:           10,
		Kinds:            fault.AllKinds(),
		LossRate:         0.2,
		Latency:          100 * time.Microsecond,
		ErrRate:          0.5,
		MaxFaultDuration: 250 * time.Millisecond,
	}
	sched := spec.Schedule()
	if again := spec.Schedule(); fmt.Sprint(again) != fmt.Sprint(sched) {
		t.Fatalf("schedule not deterministic:\n%v\n%v", sched, again)
	}
	runnerDone := make(chan struct{})
	go func() {
		defer close(runnerDone)
		inj.Run(fault.RealClock{}, sched, nil)
	}()

	// Drive crafted HTTP GETs through the vnet for the whole horizon. Inject
	// is synchronous, so every accepted frame is accounted by the time the
	// loop exits. injected only counts accepted frames (Inject err == nil).
	var injected uint64
	var b packet.Builder
	deadline := time.Now().Add(spec.Horizon + 200*time.Millisecond)
	for i := 0; time.Now().Before(deadline); i++ {
		client := clients[i%len(clients)]
		raw := b.TCP(packet.TCPSpec{
			Src: client.Addr, Dst: server.Addr,
			SrcPort: uint16(20000 + i%512), DstPort: 80,
			Flags:   packet.TCPFlagACK,
			Payload: proto.BuildHTTPGet(fmt.Sprintf("/u%d", i%8), server.Name),
		})
		if err := e.Network().Inject(raw); err != nil {
			t.Fatalf("Inject: %v", err)
		}
		injected++
		if i%32 == 31 {
			time.Sleep(time.Millisecond)
		}
	}
	<-runnerDone // every scheduled fault has been applied and cleared

	// Failover coverage is mandatory: when the drawn schedule happened to
	// skip MonitorCrash, kill a monitor directly through the injector.
	if crashes, _ := e.Orchestrator().CrashStats(); crashes == 0 {
		inj.Apply(fault.Event{Kind: fault.MonitorCrash, Pick: uint64(seed)})
	}
	crashes, crashLost := e.Orchestrator().CrashStats()
	if crashes == 0 {
		t.Fatal("soak finished without a monitor crash")
	}
	if got := sess.MonitorRestarts(); got != crashes {
		t.Fatalf("monitor restarts = %d, want %d (one failover per crash)", got, crashes)
	}
	if sess.MonitorCount() == 0 {
		t.Fatal("no live monitor after failover")
	}

	// Re-convergence: with every fault cleared and the crashed monitor
	// replaced, new traffic must keep producing results with no operator
	// intervention.
	pre := results.Load()
	convergeBy := time.Now().Add(5 * time.Second)
	for i := 0; results.Load() == pre; i++ {
		if !time.Now().Before(convergeBy) {
			t.Fatalf("pipeline did not re-converge after faults cleared (results stuck at %d)", pre)
		}
		raw := b.TCP(packet.TCPSpec{
			Src: clients[i%len(clients)].Addr, Dst: server.Addr,
			SrcPort: uint16(30000 + i%128), DstPort: 80,
			Flags:   packet.TCPFlagACK,
			Payload: proto.BuildHTTPGet("/converge", server.Name),
		})
		if err := e.Network().Inject(raw); err != nil {
			t.Fatalf("Inject: %v", err)
		}
		injected++
		time.Sleep(2 * time.Millisecond)
	}

	sess.Stop()
	<-resultsDone

	// Conservation ledger: every frame and tuple the soak produced is in
	// exactly one bucket.
	vst := e.Network().Stats()
	mon := sess.MonitorStats()
	ts := e.Aggregation().Stats(topic)
	led := chaosLedger{
		Seed:           seed,
		Injected:       injected,
		Frames:         vst.Frames,
		FaultDrops:     vst.FaultDrops,
		Mirrored:       vst.Mirrored,
		TapDrops:       vst.TapDrops,
		Delivered:      sess.Packets(),
		Crashes:        crashes,
		CrashLost:      crashLost,
		Restarts:       sess.MonitorRestarts(),
		MonitorTuples:  mon.Tuples,
		MQRetries:      ts.Retries,
		AppendedTuples: ts.AppendedTuples,
		DroppedTuples:  ts.DroppedTuples,
		ConsumedTuples: ts.ConsumedTuples,
		Results:        results.Load(),
		ResultDrops:    sess.ResultDrops(),
	}
	led.append(t)

	// (1) A frame is forwarded or dropped by an injected fault, never lost.
	if led.Injected != led.Frames+led.FaultDrops {
		t.Errorf("frame ledger: injected %d != frames %d + fault drops %d", led.Injected, led.Frames, led.FaultDrops)
	}
	// (2) A mirrored copy reaches a monitor or dies with a crashed tap.
	if led.Mirrored != led.Delivered+led.CrashLost {
		t.Errorf("mirror ledger: mirrored %d != delivered %d + crash lost %d", led.Mirrored, led.Delivered, led.CrashLost)
	}
	// (3) Monitors saw exactly the frames the pumps delivered.
	if mon.Received != led.Delivered {
		t.Errorf("monitor received %d, pumps delivered %d", mon.Received, led.Delivered)
	}
	// (4) Every parsed tuple lands in the topic or is attributed to an mq
	// drop after its retry budget.
	if led.MonitorTuples != led.AppendedTuples+led.DroppedTuples {
		t.Errorf("tuple ledger: parsed %d != appended %d + dropped %d", led.MonitorTuples, led.AppendedTuples, led.DroppedTuples)
	}
	// (5) Every Send is resolved: the batch landed or was dropped.
	if ts.Attempts != ts.Appended+ts.Dropped {
		t.Errorf("batch ledger: attempts %d != appended %d + dropped %d", ts.Attempts, ts.Appended, ts.Dropped)
	}
	// (6) Stop's drain consumed the whole topic once the outages cleared
	// (offset-preserving reconnect: an outage delays consumption, never
	// skips it).
	if ts.ConsumedTuples != ts.AppendedTuples || ts.Buffered != 0 {
		t.Errorf("drain ledger: consumed %d / appended %d, buffered %d", ts.ConsumedTuples, ts.AppendedTuples, ts.Buffered)
	}
	// (7) Passthrough is 1:1, so every consumed tuple surfaced as a result
	// or a counted result drop.
	if led.Results+led.ResultDrops != led.ConsumedTuples {
		t.Errorf("result ledger: results %d + drops %d != consumed %d", led.Results, led.ResultDrops, led.ConsumedTuples)
	}

	e.Close()
	if n := settleGoroutines(baseline, 5*time.Second); n > baseline {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutine leak: %d running, baseline %d\n%s", n, baseline, buf[:runtime.Stack(buf, true)])
	}
}

// TestChaosFailoverResumesResults isolates the failover path: kill one
// monitor directly through the orchestrator and assert the session replaces
// it, re-installs its mirror rules, and keeps producing results.
func TestChaosFailoverResumesResults(t *testing.T) {
	topo := topology.MustNew(4)
	e := NewEngine(topo, Config{TickInterval: 10 * time.Millisecond, TraceSampleEvery: -1})
	defer e.Close()
	hosts := topo.Hosts()
	server, client := hosts[0], hosts[12]

	sess, err := e.Submit(fmt.Sprintf("PARSE http_get FROM * TO %s:80 PROCESS (passthrough)", server.Name))
	if err != nil {
		t.Fatal(err)
	}
	var results atomic.Uint64
	go func() {
		for range sess.Results() {
			results.Add(1)
		}
	}()
	rules := len(e.Controller().QueryRules(sess.ID))
	if rules == 0 {
		t.Fatal("no mirror rules installed")
	}

	var b packet.Builder
	inject := func(i int) {
		raw := b.TCP(packet.TCPSpec{
			Src: client.Addr, Dst: server.Addr,
			SrcPort: uint16(40000 + i%64), DstPort: 80,
			Flags:   packet.TCPFlagACK,
			Payload: proto.BuildHTTPGet("/r", server.Name),
		})
		if err := e.Network().Inject(raw); err != nil {
			t.Fatalf("Inject: %v", err)
		}
	}
	waitResults := func(min uint64, what string) {
		deadline := time.Now().Add(5 * time.Second)
		for i := 0; results.Load() < min; i++ {
			if !time.Now().Before(deadline) {
				t.Fatalf("%s: results stuck at %d, want >= %d", what, results.Load(), min)
			}
			inject(i)
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitResults(1, "before crash")

	ins := e.Orchestrator().Instances(sess.ID)
	if len(ins) == 0 {
		t.Fatal("no instances")
	}
	// Crash is synchronous through the failover callback: when it returns
	// the replacement is launched and its mirror rules are live.
	if !e.Orchestrator().Crash(ins[0]) {
		t.Fatal("Crash returned false for a live instance")
	}
	if got := sess.MonitorRestarts(); got != 1 {
		t.Fatalf("restarts = %d, want 1", got)
	}
	if got := sess.MonitorCount(); got != len(ins) {
		t.Fatalf("monitor count = %d, want %d", got, len(ins))
	}
	if got := len(e.Controller().QueryRules(sess.ID)); got != rules {
		t.Fatalf("mirror rules after failover = %d, want %d", got, rules)
	}
	for _, in := range e.Orchestrator().Instances(sess.ID) {
		if in == ins[0] {
			t.Fatal("crashed instance still in the roster")
		}
	}
	waitResults(results.Load()+1, "after failover")
	sess.Stop()
}

// gateSpout polls one batch at a time and trips the fault injector after
// `gate` polled batches, so the outage lands at a deterministic stream
// position regardless of scheduling. Single-task use only (no locking).
type gateSpout struct {
	poller stream.BatchPoller
	polled int
	gate   int
	trip   func()
}

func (s *gateSpout) Next() []tuple.Tuple {
	if s.polled == s.gate && s.trip != nil {
		s.trip()
		s.trip = nil
	}
	bs := s.poller.Poll(1)
	if len(bs) == 0 {
		return nil
	}
	s.polled++
	return append([]tuple.Tuple(nil), bs[0].Tuples...)
}

// TestChaosStreamDrainOnMQUnavailable takes the mq topic down mid-stream —
// tripped between two spout polls, so the outage lands at an exact batch —
// and asserts the executor's Stop neither hangs nor loses a polled tuple,
// and that the outage delayed (not skipped) the rest of the topic.
func TestChaosStreamDrainOnMQUnavailable(t *testing.T) {
	inj := fault.NewInjector(1, nil)
	cl := mq.NewCluster(1, mq.Config{Partitions: 1, BufferBatches: 2048})
	cl.SetFaultHook(inj)

	const batches, perBatch = 300, 4
	prod := cl.Producer("t")
	for i := 0; i < batches; i++ {
		tuples := make([]tuple.Tuple, perBatch)
		for j := range tuples {
			tuples[j] = tuple.Tuple{Parser: "p", Key: fmt.Sprintf("k%d", i*perBatch+j), Val: 1}
		}
		if err := prod.Send(&tuple.Batch{Parser: "p", Tuples: tuples}); err != nil {
			t.Fatal(err)
		}
	}

	// The spout trips the outage after 50 polled batches: the topic becomes
	// unavailable at an exact point mid-stream, with 250 batches still
	// buffered behind the group offset.
	var delivered atomic.Uint64
	deliver := func(tuple.Tuple) { delivered.Add(1) }
	spoutFactory := func() stream.Spout {
		return &gateSpout{
			poller: cl.GroupConsumer("t", "g"),
			gate:   50,
			trip:   func() { inj.Apply(fault.Event{Kind: fault.MQDown}) },
		}
	}
	topo, err := stream.BuildTopology(stream.ProcessorSpec{Name: "passthrough"}, spoutFactory, 1, deliver, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := stream.NewExecutor(topo)
	if err != nil {
		t.Fatal(err)
	}
	ex.Start()

	deadline := time.Now().Add(5 * time.Second)
	for inj.ActiveCount() == 0 {
		if !time.Now().Before(deadline) {
			t.Fatalf("outage never tripped: delivered %d", delivered.Load())
		}
		time.Sleep(time.Millisecond)
	}

	// Stop against an unavailable topic must drain in-flight tuples and
	// return; a poll of a downed partition returns empty, it never blocks.
	stopped := make(chan struct{})
	go func() {
		ex.Stop()
		close(stopped)
	}()
	select {
	case <-stopped:
	case <-time.After(3 * time.Second):
		t.Fatal("Executor.Stop hung with the topic unavailable")
	}

	st := cl.Stats("t")
	if delivered.Load() != st.ConsumedTuples {
		t.Fatalf("tuple loss across Stop: delivered %d, consumed %d", delivered.Load(), st.ConsumedTuples)
	}
	if st.ConsumedTuples != 50*perBatch {
		t.Fatalf("outage position drifted: consumed %d, want %d", st.ConsumedTuples, 50*perBatch)
	}

	// Offset-preserving reconnect: the same group resumes exactly where the
	// outage froze it and drains the remainder, nothing skipped.
	inj.ClearAll()
	rest := uint64(0)
	c := cl.GroupConsumer("t", "g")
	for idle := 0; idle < 3; {
		bs := c.Poll(16)
		if len(bs) == 0 {
			idle++
			continue
		}
		idle = 0
		for _, b := range bs {
			rest += uint64(len(b.Tuples))
		}
	}
	st = cl.Stats("t")
	if total := delivered.Load() + rest; total != batches*perBatch || st.ConsumedTuples != batches*perBatch {
		t.Fatalf("post-outage drain: delivered %d + rest %d != %d (consumed %d)",
			delivered.Load(), rest, batches*perBatch, st.ConsumedTuples)
	}
	if st.Buffered != 0 {
		t.Fatalf("buffered = %d after full drain", st.Buffered)
	}
}
