package core

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"netalytics/internal/apps"
	"netalytics/internal/insight"
	"netalytics/internal/topology"
)

// insightBed is the §7 scenario harness: the demo application (proxy -> two
// app servers -> MySQL + memcached) on a monitored engine with the insight
// tier enabled and the standing observation queries submitted — zero
// hand-written queries anywhere in these tests.
type insightBed struct {
	e         *Engine
	proxy     *topology.Host
	app1H     *topology.Host
	app2H     *topology.Host
	mysqlH    *topology.Host
	client    *topology.Host
	db        *apps.MySQLServer
	app1      *apps.AppServer
	app2      *apps.AppServer
	kv        *apps.KVStore
	incidents chan insight.Incident

	stop  chan struct{}
	loads []chan struct{} // one done-channel per load loop
}

// skipUnderRace guards the statistical detection scenarios: they assert
// sigma-level shifts under real-time pacing, which the race detector's
// slowdown distorts. The insight CI job runs them race-free; the tier's
// concurrency surface stays under -race via the unit and lifecycle tests.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("statistical detection under real-time pacing; run without -race (see the insight CI job)")
	}
}

func startInsightBed(t *testing.T) *insightBed {
	t.Helper()
	topo := topology.MustNew(4)
	topo.RandomizeResources(rand.New(rand.NewSource(5)))
	b := &insightBed{incidents: make(chan insight.Incident, 256), stop: make(chan struct{})}
	b.e = NewEngine(topo, Config{
		// 400ms ticks make the rolling diff-group windows long enough that
		// per-window connection counts and latency means aggregate tens of
		// requests: the per-window value's variance shrinks with the window
		// population, which matters on small CI machines where the whole
		// emulation shares a core or two with the load loops. (At 100ms
		// ticks the counts are single digits and quantization noise alone
		// swamps a 2x load shift.)
		TickInterval: 400 * time.Millisecond,
		Insight: &insight.Config{
			// Slightly off the tick period on purpose, so snapshots don't
			// phase-lock to window emission and resample one window twice
			// during learning (duplicate samples understate the variance).
			SnapshotPeriod: 500 * time.Millisecond,
			// The window must bridge the detectors' asymmetric reaction
			// times: a favored backend's rate spike z-fires within two
			// snapshots, while the starved backend's bounded (-100% at most)
			// shift accumulates through CUSUM for ~1s before tripping. Both
			// must land in one group to correlate into a single incident.
			Window: 2 * time.Second,
			// Conservative thresholds: per-window rate and latency series
			// carry sampling noise at these small window populations (plus
			// scheduler jitter on the emulation itself), and the injected
			// faults below are 10+ sigma events anyway.
			// MinConsecutive 2 is the "for:" clause: a single freak window
			// (p95 of a small population is jumpy) must not alert; every
			// injected fault below persists for many windows.
			Detector: insight.DetectorConfig{LearnSamples: 12, Sigma: 5, CUSUMThreshold: 12, CUSUMDrift: 1, HalfLife: 16, MinConsecutive: 2},
			// Every injected fault below shifts several series at once; a
			// lone series tripping its detector (one scheduler stall on a
			// loaded CI box) is noise, not an incident.
			MinAnomalies: 2,
			// Observe only the observation-derived series: the pipeline's own
			// health metrics are exercised elsewhere and would add
			// scheduling-noise series to a test that must be deterministic.
			Filter:     func(name string) bool { return strings.HasPrefix(name, "insight_") },
			OnIncident: func(inc insight.Incident) { b.incidents <- inc },
		},
	})
	t.Cleanup(b.e.Close)

	hosts := topo.Hosts()
	b.proxy, b.app1H, b.app2H, b.mysqlH, b.client = hosts[0], hosts[1], hosts[2], hosts[4], hosts[12]
	memcachedH := hosts[5]
	net := b.e.Network()

	var err error
	b.db, err = apps.StartMySQL(net, b.mysqlH, apps.MySQLConfig{DefaultCost: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.db.Stop)
	cache, err := apps.StartMemcached(net, memcachedH, apps.MemcachedConfig{Cost: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cache.Stop)

	routes := map[string]apps.Route{
		"/db":     {Cost: time.Millisecond, Backend: apps.BackendMySQL, BackendHost: b.mysqlH, Query: "SELECT * FROM film"},
		"/cache":  {Cost: time.Millisecond, Backend: apps.BackendMemcached, BackendHost: memcachedH, Query: "page"},
		"/videos": {Cost: 2 * time.Millisecond},
	}
	b.app1, err = apps.StartApp(net, b.app1H, apps.AppConfig{Routes: routes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.app1.Stop)
	b.app2, err = apps.StartApp(net, b.app2H, apps.AppConfig{Routes: routes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.app2.Stop)

	b.kv = apps.NewKVStore()
	b.kv.SetPool([]string{b.app1H.Name, b.app2H.Name})
	proxy, err := apps.StartProxy(net, b.proxy, apps.ProxyConfig{Store: b.kv})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proxy.Stop)

	if err := b.e.ObserveServices(); err != nil {
		t.Fatalf("ObserveServices: %v", err)
	}
	t.Cleanup(b.stopLoads)
	return b
}

// load starts concurrency background workers issuing url through the proxy
// until stopLoads. Separate worker pools per URL class keep a slowdown of one
// page from throttling the others' closed-loop rates, and each worker runs a
// smooth request loop — batched load runners would stall at batch boundaries
// and inject rate dips into the very series the detectors watch.
func (b *insightBed) load(url string, concurrency int, gap time.Duration) {
	req := []byte("GET " + url + " HTTP/1.1\r\nHost: lb\r\n\r\n")
	for w := 0; w < concurrency; w++ {
		done := make(chan struct{})
		b.loads = append(b.loads, done)
		go func() {
			defer close(done)
			ep := b.e.Network().Endpoint(b.client)
			for {
				select {
				case <-b.stop:
					return
				default:
				}
				conn, err := ep.Dial(b.proxy.Addr, 80)
				if err != nil {
					time.Sleep(10 * time.Millisecond)
					continue
				}
				conn.Request(req, time.Second)
				conn.Close()
				if gap > 0 {
					time.Sleep(gap)
				}
			}
		}()
	}
}

func (b *insightBed) stopLoads() {
	select {
	case <-b.stop:
	default:
		close(b.stop)
	}
	for _, done := range b.loads {
		<-done
	}
}

// drain empties the incident channel, returning what was pending.
func (b *insightBed) drain() []insight.Incident {
	var out []insight.Incident
	for {
		select {
		case inc := <-b.incidents:
			out = append(out, inc)
		default:
			return out
		}
	}
}

// await blocks until an incident matching pred arrives or the deadline
// passes, returning the incident and how long it took.
func (b *insightBed) await(t *testing.T, deadline time.Duration, what string, pred func(insight.Incident) bool) (insight.Incident, time.Duration) {
	t.Helper()
	start := time.Now()
	timeout := time.After(deadline)
	for {
		select {
		case inc := <-b.incidents:
			if pred(inc) {
				return inc, time.Since(start)
			}
			t.Logf("unmatched incident: root=%s %s", inc.Root, inc.Summary)
			for _, a := range inc.Anomalies {
				t.Logf("  %s %s sigma=%+.1f value=%.0f baseline=%.0f", a.Kind, a.Series, a.Sigma, a.Value, a.Baseline)
			}
		case <-timeout:
			t.Fatalf("no %s incident within %v", what, deadline)
			return insight.Incident{}, 0
		}
	}
}

func hasAnomalyOnHost(inc insight.Incident, host string) bool {
	for _, a := range inc.Anomalies {
		if a.Host() == host {
			return true
		}
	}
	return false
}

// learnPeriod covers observation warm-up (monitor placement, first result
// windows) plus the detectors' learning samples at the configured cadence.
const learnPeriod = 8 * time.Second

// TestInsightDetectsDBLatencyInjection is §7.1: raise the database's query
// cost mid-run and expect one correlated incident rooted at the MySQL host —
// without any hand-written query.
func TestInsightDetectsDBLatencyInjection(t *testing.T) {
	skipUnderRace(t)
	b := startInsightBed(t)
	b.load("/db", 2, 4*time.Millisecond)
	b.load("/cache", 2, 4*time.Millisecond)
	b.load("/videos", 2, 4*time.Millisecond)
	time.Sleep(learnPeriod)
	if pre := b.drain(); len(pre) > 0 {
		t.Logf("note: %d incident(s) during baseline", len(pre))
	}

	b.db.SetDefaultCost(25 * time.Millisecond)
	inc, ttd := b.await(t, 15*time.Second, "db-latency", func(inc insight.Incident) bool {
		return hasAnomalyOnHost(inc, b.mysqlH.Name)
	})
	t.Logf("db latency injection detected in %v: root=%s %s", ttd, inc.Root, inc.Summary)

	if inc.Root != b.mysqlH.Name {
		t.Errorf("incident root = %q, want the injected DB host %q", inc.Root, b.mysqlH.Name)
	}
	if len(inc.Anomalies) < 2 {
		t.Errorf("expected a correlated incident, got %d anomaly", len(inc.Anomalies))
	}
	// Correlation, not an alert storm: the burst right after detection must
	// stay a handful of rooted incidents, not one alert per shifted series.
	time.Sleep(1500 * time.Millisecond)
	if extra := b.drain(); len(extra) > 4 {
		t.Errorf("alert storm: %d further incidents within 1.5s", len(extra))
	}
}

// TestInsightDetectsBrokenPage is §7.2 (Fig. 14): the /db page silently
// skips its database query — it gets faster, which no threshold alert
// catches, but the baseline comparison flags the depressed latency and the
// vanished DB traffic as one incident.
func TestInsightDetectsBrokenPage(t *testing.T) {
	skipUnderRace(t)
	b := startInsightBed(t)
	b.load("/db", 2, 4*time.Millisecond)
	b.load("/videos", 2, 4*time.Millisecond)
	time.Sleep(learnPeriod)
	b.drain()

	broken := apps.Route{Cost: time.Millisecond, Backend: apps.BackendMySQL, BackendHost: b.mysqlH, Query: "SELECT * FROM film", Broken: true}
	b.app1.SetRoute("/db", broken)
	b.app2.SetRoute("/db", broken)
	inc, ttd := b.await(t, 15*time.Second, "broken-page", func(inc insight.Incident) bool {
		for _, a := range inc.Anomalies {
			if a.Labels["url"] == "/db" && a.Sigma < 0 {
				return true
			}
		}
		return false
	})
	t.Logf("broken page detected in %v: root=%s %s", ttd, inc.Root, inc.Summary)
	// The starved DB tier itself goes silent rather than anomalous (windows
	// with zero connections emit nothing — a frozen gauge is indistinguishable
	// from a calm one), so the signature is the page's depressed latency,
	// correlated across the serving tier.
	if len(inc.Anomalies) < 2 {
		t.Errorf("expected a correlated incident, got %d anomaly: %s", len(inc.Anomalies), inc.Summary)
	}
}

// TestInsightDetectsBackendImbalance is §7.3: skew the proxy's backend pool
// and expect the opposite-direction connection-rate shifts on the two app
// servers to correlate into one incident rooted at their common upstream —
// the proxy — even though the proxy's own series never shifted.
func TestInsightDetectsBackendImbalance(t *testing.T) {
	skipUnderRace(t)
	b := startInsightBed(t)
	b.load("/videos", 4, 2*time.Millisecond)
	time.Sleep(learnPeriod)
	b.drain()

	pool := make([]string, 0, 16)
	for i := 0; i < 15; i++ {
		pool = append(pool, b.app1H.Name)
	}
	pool = append(pool, b.app2H.Name)
	b.kv.SetPool(pool)
	// The signature is opposite-direction connection-rate shifts on the two
	// backends — rate up on the favored one, down on the starved one.
	// The weakest signal of the three scenarios: both shifts ride the noisy
	// per-window connection counts (no latency series moves), so under a
	// loaded machine the starved side can take a while to accumulate
	// through CUSUM — give it more runway than the latency scenarios.
	inc, ttd := b.await(t, 20*time.Second, "imbalance", func(inc insight.Incident) bool {
		up, down := false, false
		for _, a := range inc.Anomalies {
			if a.Name != "insight_conn_rate" {
				continue
			}
			switch a.Labels["host"] {
			case b.app1H.Name:
				up = up || a.Sigma > 0
			case b.app2H.Name:
				down = down || a.Sigma < 0
			}
		}
		return up && down
	})
	t.Logf("backend imbalance detected in %v: root=%s %s", ttd, inc.Root, inc.Summary)
	if inc.Root != b.proxy.Name {
		t.Errorf("incident root = %q, want the load balancer %q", inc.Root, b.proxy.Name)
	}
}

// TestInsightCleanRunStaysQuiet is the false-positive guard: steady traffic
// with no injected faults must produce zero incidents once the learning
// period has passed.
func TestInsightCleanRunStaysQuiet(t *testing.T) {
	skipUnderRace(t)
	b := startInsightBed(t)
	b.load("/db", 2, 4*time.Millisecond)
	b.load("/cache", 2, 4*time.Millisecond)
	time.Sleep(learnPeriod)
	b.drain() // startup transients (series appearing mid-warmup) are not the contract

	time.Sleep(4 * time.Second)
	if incs := b.drain(); len(incs) > 0 {
		for _, inc := range incs {
			t.Logf("false positive: root=%s %s", inc.Root, inc.Summary)
		}
		t.Errorf("clean run produced %d incident(s) after the learning period", len(incs))
	}
}

// TestObserveServicesRequiresInsight pins the API contract.
func TestObserveServicesRequiresInsight(t *testing.T) {
	e := newEngine(t)
	if err := e.ObserveServices(); err != ErrNoInsight {
		t.Errorf("ObserveServices without insight = %v, want ErrNoInsight", err)
	}
}

// TestInsightEngineLifecycle ensures the tier and observation sessions shut
// down cleanly with the engine (Close path, twice for idempotence).
func TestInsightEngineLifecycle(t *testing.T) {
	b := startInsightBed(t)
	if b.e.Insight() == nil {
		t.Fatal("engine has no insight tier")
	}
	b.stopLoads()
	b.e.Close()
	b.e.Close()
}
