package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"netalytics/internal/apps"
	"netalytics/internal/mq"
	"netalytics/internal/packet"
	"netalytics/internal/stream"
	"netalytics/internal/topology"
	"netalytics/internal/tuple"
	"netalytics/internal/vnet"
)

func newEngine(t *testing.T) *Engine {
	t.Helper()
	topo := topology.MustNew(4)
	topo.RandomizeResources(rand.New(rand.NewSource(5)))
	e := NewEngine(topo, Config{TickInterval: 20 * time.Millisecond})
	t.Cleanup(e.Close)
	return e
}

func TestSubmitRejectsBadQueries(t *testing.T) {
	e := newEngine(t)
	tests := []struct {
		name, q string
	}{
		{"syntax", "PARSE"},
		{"unknown parser", "PARSE nope FROM h0-0-0:80 PROCESS (passthrough)"},
		{"unknown processor", "PARSE http_get FROM h0-0-0:80 PROCESS (nope)"},
		{"unknown host", "PARSE http_get FROM nosuchhost:80 PROCESS (passthrough)"},
		{"unknown ip", "PARSE http_get FROM 99.9.9.9:80 PROCESS (passthrough)"},
		{"double wildcard", "PARSE http_get FROM * TO * PROCESS (passthrough)"},
		{"bad processor arg", "PARSE http_get FROM h0-0-0:80 PROCESS (top-k: k=banana)"},
		{"bad window arg", "PARSE http_get FROM h0-0-0:80 PROCESS (top-k: w=banana)"},
		{"bad agg arg", "PARSE http_get FROM h0-0-0:80 PROCESS (group-sum: agg=median)"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := e.Submit(tt.q); err == nil {
				t.Errorf("Submit(%q) succeeded", tt.q)
			}
		})
	}
}

func TestSubmitAfterClose(t *testing.T) {
	topo := topology.MustNew(4)
	e := NewEngine(topo, Config{})
	e.Close()
	if _, err := e.Submit("PARSE http_get FROM h0-0-0:80 PROCESS (passthrough)"); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}

// TestHTTPGetEndToEnd drives the whole pipeline: web server + client traffic
// on the vnet, a query mirroring the server's port into an http_get monitor,
// and a passthrough topology delivering URL tuples.
func TestHTTPGetEndToEnd(t *testing.T) {
	e := newEngine(t)
	hosts := e.Topology().Hosts()
	server, client := hosts[0], hosts[12]

	app, err := apps.StartApp(e.Network(), server, apps.AppConfig{
		Routes: map[string]apps.Route{"/": {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()

	sess, err := e.Submit(fmt.Sprintf("PARSE http_get FROM * TO %s:80 PROCESS (passthrough)", server.Name))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	res := apps.RunHTTPLoad(e.Network(), client, apps.LoadConfig{
		Requests: 20, Target: server,
		URL: func(i int) string { return fmt.Sprintf("/page-%d", i%4) },
	})
	if res.Errors != 0 {
		t.Fatalf("load errors = %d", res.Errors)
	}

	// Collect URL tuples until we have all 20 requests or time out.
	urls := map[string]int{}
	got := 0
	deadline := time.After(5 * time.Second)
	for got < 20 {
		select {
		case tu, ok := <-sess.Results():
			if !ok {
				t.Fatalf("results closed early with %d tuples", got)
			}
			if tu.Parser == "http_get" && tu.Key != "" {
				urls[tu.Key]++
				got++
			}
		case <-deadline:
			t.Fatalf("timed out with %d/20 url tuples (stats %+v)", got, sess.MonitorStats())
		}
	}
	sess.Stop()
	if len(urls) != 4 {
		t.Errorf("distinct urls = %d, want 4: %v", len(urls), urls)
	}
	for u, n := range urls {
		if n != 5 {
			t.Errorf("url %s count = %d, want 5", u, n)
		}
	}
	if sess.Packets() == 0 {
		t.Error("no packets recorded")
	}
	if sess.MonitorCount() == 0 {
		t.Error("no monitors deployed")
	}
}

// TestConnTimeDiffGroup reproduces the §7.1 style query: per-destination
// average connection time via tcp_conn_time + diff-group.
func TestConnTimeDiffGroup(t *testing.T) {
	e := newEngine(t)
	hosts := e.Topology().Hosts()
	fast, slow, client := hosts[0], hosts[2], hosts[12]

	appFast, err := apps.StartApp(e.Network(), fast, apps.AppConfig{
		Routes: map[string]apps.Route{"/": {Cost: 2 * time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer appFast.Stop()
	appSlow, err := apps.StartApp(e.Network(), slow, apps.AppConfig{
		Routes: map[string]apps.Route{"/": {Cost: 20 * time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer appSlow.Stop()

	sess, err := e.Submit(fmt.Sprintf(
		"PARSE tcp_conn_time FROM * TO %s:80, %s:80 PROCESS (diff-group: group=dstIP)",
		fast.Name, slow.Name))
	if err != nil {
		t.Fatal(err)
	}

	for _, target := range []*topology.Host{fast, slow} {
		res := apps.RunHTTPLoad(e.Network(), client, apps.LoadConfig{Requests: 10, Target: target})
		if res.Errors != 0 {
			t.Fatalf("load errors = %d", res.Errors)
		}
	}
	time.Sleep(200 * time.Millisecond)
	sess.Stop()

	avgs := map[string]float64{}
	for tu := range sess.Results() {
		avgs[tu.Key] = tu.Val // cumulative aggregates: last wins
	}
	fastAvg, slowAvg := avgs[fast.Addr.String()], avgs[slow.Addr.String()]
	if fastAvg == 0 || slowAvg == 0 {
		t.Fatalf("missing per-tier averages: %v", avgs)
	}
	if slowAvg < 2*fastAvg {
		t.Errorf("slow tier avg %.1fms not >> fast tier %.1fms",
			slowAvg/1e6, fastAvg/1e6)
	}
}

// TestTopKEndToEnd checks the full Fig. 4 pipeline over live traffic.
func TestTopKEndToEnd(t *testing.T) {
	e := newEngine(t)
	hosts := e.Topology().Hosts()
	server, client := hosts[0], hosts[12]

	app, err := apps.StartApp(e.Network(), server, apps.AppConfig{
		Routes: map[string]apps.Route{"/": {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()

	sess, err := e.Submit(fmt.Sprintf(
		"PARSE http_get FROM * TO %s:80 LIMIT 30s PROCESS (top-k: k=3, w=1s)", server.Name))
	if err != nil {
		t.Fatal(err)
	}

	// Skewed workload: /hot gets 60%, others split the rest.
	res := apps.RunHTTPLoad(e.Network(), client, apps.LoadConfig{
		Requests: 50, Target: server,
		URL: func(i int) string {
			if i%5 < 3 {
				return "/hot"
			}
			return fmt.Sprintf("/cold-%d", i%7)
		},
	})
	if res.Errors != 0 {
		t.Fatalf("load errors = %d", res.Errors)
	}
	time.Sleep(200 * time.Millisecond)
	sess.Stop()

	var best []stream.RankEntry
	for tu := range sess.Results() {
		if entries, ok := stream.DecodeRankings(tu); ok && len(entries) > 0 {
			if len(best) == 0 || entries[0].Count > best[0].Count {
				best = entries
			}
		}
	}
	if len(best) == 0 {
		t.Fatal("no rankings produced")
	}
	if best[0].Key != "/hot" {
		t.Errorf("top entry = %+v, want /hot", best[0])
	}
}

func TestPacketLimitStopsSession(t *testing.T) {
	e := newEngine(t)
	hosts := e.Topology().Hosts()
	server, client := hosts[0], hosts[12]
	app, err := apps.StartApp(e.Network(), server, apps.AppConfig{
		Routes: map[string]apps.Route{"/": {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()

	sess, err := e.Submit(fmt.Sprintf(
		"PARSE tcp_flow_key FROM * TO %s:80 LIMIT 10p PROCESS (passthrough)", server.Name))
	if err != nil {
		t.Fatal(err)
	}
	apps.RunHTTPLoad(e.Network(), client, apps.LoadConfig{Requests: 30, Target: server})

	select {
	case <-sess.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("session did not stop at packet limit")
	}
	if got := sess.Packets(); got < 10 {
		t.Errorf("packets = %d, want >= 10", got)
	}
}

func TestDurationLimitStopsSession(t *testing.T) {
	e := newEngine(t)
	hosts := e.Topology().Hosts()
	sess, err := e.Submit(fmt.Sprintf(
		"PARSE tcp_flow_key FROM * TO %s:80 LIMIT 50ms PROCESS (passthrough)", hosts[0].Name))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-sess.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("session did not stop at duration limit")
	}
}

func TestRulesRemovedOnStop(t *testing.T) {
	e := newEngine(t)
	hosts := e.Topology().Hosts()
	sess, err := e.Submit(fmt.Sprintf(
		"PARSE tcp_flow_key FROM * TO %s:80 PROCESS (passthrough)", hosts[0].Name))
	if err != nil {
		t.Fatal(err)
	}
	if e.Controller().RuleCount() == 0 {
		t.Fatal("no rules installed")
	}
	sess.Stop()
	if got := e.Controller().RuleCount(); got != 0 {
		t.Errorf("rules after stop = %d, want 0", got)
	}
	sess.Stop() // idempotent
}

func TestFixedSampleRateApplied(t *testing.T) {
	e := newEngine(t)
	hosts := e.Topology().Hosts()
	sess, err := e.Submit(fmt.Sprintf(
		"PARSE tcp_flow_key FROM * TO %s:80 SAMPLE 0.25 PROCESS (passthrough)", hosts[0].Name))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Stop()
	for _, rate := range sess.SampleRates() {
		if rate < 0.24 || rate > 0.26 {
			t.Errorf("sample rate = %v, want 0.25", rate)
		}
	}
}

func TestMultipleConcurrentSessions(t *testing.T) {
	e := newEngine(t)
	hosts := e.Topology().Hosts()
	server, client := hosts[0], hosts[12]
	app, err := apps.StartApp(e.Network(), server, apps.AppConfig{
		Routes: map[string]apps.Route{"/": {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()

	s1, err := e.Submit(fmt.Sprintf("PARSE http_get FROM * TO %s:80 PROCESS (passthrough)", server.Name))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := e.Submit(fmt.Sprintf("PARSE tcp_conn_time FROM * TO %s:80 PROCESS (passthrough)", server.Name))
	if err != nil {
		t.Fatal(err)
	}

	apps.RunHTTPLoad(e.Network(), client, apps.LoadConfig{Requests: 10, Target: server})
	time.Sleep(200 * time.Millisecond)
	s1.Stop()
	s2.Stop()

	count := func(s *Session, parser string) int {
		n := 0
		for tu := range s.Results() {
			if tu.Parser == parser {
				n++
			}
		}
		return n
	}
	if n := count(s1, "http_get"); n == 0 {
		t.Error("session 1 saw no http_get tuples")
	}
	if n := count(s2, "tcp_conn_time"); n == 0 {
		t.Error("session 2 saw no tcp_conn_time tuples")
	}
}

// TestJoinGroupQuery exercises the explicit join processor end to end:
// per-URL byte volumes from http_get × tcp_pkt_size.
func TestJoinGroupQuery(t *testing.T) {
	e := newEngine(t)
	hosts := e.Topology().Hosts()
	server, client := hosts[0], hosts[12]
	app, err := apps.StartApp(e.Network(), server, apps.AppConfig{
		Routes: map[string]apps.Route{
			"/big":   {BodySize: 4000},
			"/small": {BodySize: 50},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()

	sess, err := e.Submit(fmt.Sprintf(
		"PARSE http_get, tcp_pkt_size FROM * TO %s:80 PROCESS (join-group: left=http_get, right=tcp_pkt_size, agg=sum)",
		server.Name))
	if err != nil {
		t.Fatal(err)
	}
	res := apps.RunHTTPLoad(e.Network(), client, apps.LoadConfig{
		Requests: 10, Target: server,
		URL: func(i int) string {
			if i%2 == 0 {
				return "/big"
			}
			return "/small"
		},
	})
	if res.Errors != 0 {
		t.Fatalf("load errors = %d", res.Errors)
	}
	time.Sleep(250 * time.Millisecond)
	sess.Stop()

	sums := map[string]float64{}
	for tu := range sess.Results() {
		sums[tu.Key] = tu.Val
	}
	if sums["/big"] == 0 || sums["/small"] == 0 {
		t.Fatalf("per-url sums missing: %v", sums)
	}
	if sums["/big"] < 5*sums["/small"] {
		t.Errorf("/big bytes (%v) not dominating /small (%v)", sums["/big"], sums["/small"])
	}
}

// TestMultipleProcessorsOneQuery checks the processor-list form of the
// grammar: both PROCESS topologies must see the full data stream (they read
// the topics through independent consumer groups).
func TestMultipleProcessorsOneQuery(t *testing.T) {
	e := newEngine(t)
	hosts := e.Topology().Hosts()
	server, client := hosts[0], hosts[12]
	app, err := apps.StartApp(e.Network(), server, apps.AppConfig{
		Routes: map[string]apps.Route{"/": {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()

	sess, err := e.Submit(fmt.Sprintf(
		"PARSE http_get FROM * TO %s:80 PROCESS (passthrough), (top-k: k=3, w=500ms)", server.Name))
	if err != nil {
		t.Fatal(err)
	}
	res := apps.RunHTTPLoad(e.Network(), client, apps.LoadConfig{
		Requests: 12, Target: server, URL: func(int) string { return "/only" },
	})
	if res.Errors != 0 {
		t.Fatalf("load errors = %d", res.Errors)
	}
	time.Sleep(250 * time.Millisecond)
	sess.Stop()

	raw := 0
	var topCount float64
	for tu := range sess.Results() {
		if entries, ok := stream.DecodeRankings(tu); ok {
			if len(entries) > 0 && entries[0].Count > topCount {
				topCount = entries[0].Count
			}
			continue
		}
		if tu.Key == "/only" {
			raw++
		}
	}
	if raw != 12 {
		t.Errorf("passthrough saw %d url tuples, want 12", raw)
	}
	if topCount != 12 {
		t.Errorf("top-k counted %v, want 12 (processors must not split the stream)", topCount)
	}
}

func TestEngineCloseStopsSessions(t *testing.T) {
	topo := topology.MustNew(4)
	e := NewEngine(topo, Config{})
	sess, err := e.Submit("PARSE tcp_flow_key FROM h0-0-0:80 PROCESS (passthrough)")
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	select {
	case <-sess.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not stop session")
	}
}

// TestSubnetAddressQuery exercises the grammar's subnet:port form: the
// query targets a whole rack by CIDR, and traffic to any host in it is
// monitored.
func TestSubnetAddressQuery(t *testing.T) {
	e := newEngine(t)
	hosts := e.Topology().Hosts()
	// hosts[0] and hosts[1] share rack 10.0.0.0/24 on k=4.
	s1, s2, client := hosts[0], hosts[1], hosts[12]
	for _, h := range []*topology.Host{s1, s2} {
		app, err := apps.StartApp(e.Network(), h, apps.AppConfig{
			Routes: map[string]apps.Route{"/": {}},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer app.Stop()
	}

	sess, err := e.Submit("PARSE http_get FROM * TO 10.0.0.0/24:80 PROCESS (passthrough)")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	for _, target := range []*topology.Host{s1, s2} {
		res := apps.RunHTTPLoad(e.Network(), client, apps.LoadConfig{
			Requests: 5, Target: target, URL: func(int) string { return "/r" },
		})
		if res.Errors != 0 {
			t.Fatalf("load errors = %d", res.Errors)
		}
	}
	time.Sleep(200 * time.Millisecond)
	sess.Stop()

	perDst := map[string]int{}
	for tu := range sess.Results() {
		if tu.Key != "" {
			perDst[tu.DstIP]++
		}
	}
	if perDst[s1.Addr.String()] != 5 || perDst[s2.Addr.String()] != 5 {
		t.Errorf("per-destination url tuples = %v, want 5 for both rack hosts", perDst)
	}

	// An empty subnet is rejected.
	if _, err := e.Submit("PARSE http_get FROM * TO 192.168.0.0/24:80 PROCESS (passthrough)"); !errors.Is(err, ErrUnknownHost) {
		t.Errorf("empty subnet: err = %v", err)
	}
}

// TestFeedbackSamplingUnderOverload drives the aggregation layer past its
// high watermark and asserts the §4.2 loop: monitors cut their sampling rate
// under back pressure and recover when the buffers drain (DESIGN.md #6).
func TestFeedbackSamplingUnderOverload(t *testing.T) {
	topo := topology.MustNew(4)
	e := NewEngine(topo, Config{
		TickInterval: 10 * time.Millisecond,
		MQ:           mq.Config{BufferBatches: 300, HighWatermark: 0.3},
	})
	defer e.Close()
	hosts := e.Topology().Hosts()

	sess, err := e.Submit(fmt.Sprintf(
		"PARSE http_get FROM * TO %s:80 SAMPLE auto PROCESS (passthrough)", hosts[0].Name))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Stop()
	for _, rate := range sess.SampleRates() {
		if rate != 1 {
			t.Fatalf("initial sample rate = %v, want 1", rate)
		}
	}

	// Flood the session topic directly, faster than the spout drains it.
	topic := sess.ID + "/http_get"
	prod := e.Aggregation().Producer(topic)
	big := &tupleBatch{}
	for i := 0; i < 64; i++ {
		big.add(tuple.Tuple{FlowID: uint64(i), Key: "/x"})
	}
	overloaded := false
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && !overloaded {
		for i := 0; i < 200; i++ {
			_ = prod.Send(big.batch())
		}
		for _, rate := range sess.SampleRates() {
			if rate < 1 {
				overloaded = true
			}
		}
	}
	if !overloaded {
		t.Fatal("monitors never reduced their sampling rate under overload")
	}

	// Stop flooding: the spout drains, a recovery status fires, and rates
	// rise again (additive increase).
	low := minRate(sess)
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if minRate(sess) > low {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("sample rate never recovered above %v", low)
}

func minRate(sess *Session) float64 {
	min := 1.0
	for _, r := range sess.SampleRates() {
		if r < min {
			min = r
		}
	}
	return min
}

// tupleBatch is a tiny helper for building reusable batches in tests.
type tupleBatch struct{ tuples []tuple.Tuple }

func (b *tupleBatch) add(t tuple.Tuple) { b.tuples = append(b.tuples, t) }
func (b *tupleBatch) batch() *tuple.Batch {
	return &tuple.Batch{Parser: "http_get", Tuples: b.tuples}
}

func TestResultDeliveryDropsWhenSlow(t *testing.T) {
	e := NewEngine(topology.MustNew(4), Config{ResultBuffer: 1})
	defer e.Close()
	s := &Session{results: make(chan tuple.Tuple, 1)}
	s.deliver(tuple.Tuple{Key: "a"})
	s.deliver(tuple.Tuple{Key: "b"})
	if s.ResultDrops() != 1 {
		t.Errorf("drops = %d, want 1", s.ResultDrops())
	}
}

func TestVnetFlowCacheConfig(t *testing.T) {
	topo := topology.MustNew(4)

	// Default: the engine enables the forwarding-decision cache.
	e := NewEngine(topo, Config{})
	defer e.Close()
	hosts := topo.Hosts()
	raw := testFrame(hosts[12], hosts[0])
	if err := e.Network().Inject(raw); err != nil {
		t.Fatal(err)
	}
	if cs := e.Network().FlowCacheStats(); cs.Misses != 1 {
		t.Errorf("default engine cache stats = %+v, want the first frame to miss", cs)
	}
	// The cache and controller gauges surface through the engine registry.
	want := map[string]bool{
		"vnet_flowcache_hits": false, "vnet_flowcache_misses": false,
		"vnet_flowcache_evictions": false, "sdn_flowtable_misses": false,
		"sdn_rules_total": false,
	}
	for _, p := range e.Metrics().Snapshot() {
		if _, ok := want[p.Name]; ok {
			want[p.Name] = true
		}
	}
	for name, found := range want {
		if !found {
			t.Errorf("metric %s not registered", name)
		}
	}

	// Negative disables the cache — the A/B baseline.
	off := NewEngine(topo, Config{VnetFlowCacheSize: -1})
	defer off.Close()
	if err := off.Network().Inject(raw); err != nil {
		t.Fatal(err)
	}
	if cs := off.Network().FlowCacheStats(); cs != (vnet.FlowCacheStats{}) {
		t.Errorf("disabled engine cache stats = %+v, want zeros", cs)
	}
}

// TestShardedIngestEndToEnd runs the full pipeline with IngestShards
// enabled: lock-free mq rings, work-stealing monitor collectors and spout
// affinity hints. Results must match the legacy path exactly — every
// request's URL tuple arrives, none duplicated — and the sharded datapath
// must actually be in use (per-shard occupancy gauges registered, batches
// spread over ring shards).
func TestShardedIngestEndToEnd(t *testing.T) {
	topo := topology.MustNew(4)
	topo.RandomizeResources(rand.New(rand.NewSource(5)))
	e := NewEngine(topo, Config{TickInterval: 20 * time.Millisecond, IngestShards: 4})
	t.Cleanup(e.Close)
	hosts := e.Topology().Hosts()
	server, client := hosts[0], hosts[12]

	app, err := apps.StartApp(e.Network(), server, apps.AppConfig{
		Routes: map[string]apps.Route{"/": {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()

	sess, err := e.Submit(fmt.Sprintf("PARSE http_get FROM * TO %s:80 PROCESS (passthrough)", server.Name))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	res := apps.RunHTTPLoad(e.Network(), client, apps.LoadConfig{
		Requests: 20, Target: server,
		URL: func(i int) string { return fmt.Sprintf("/page-%d", i%4) },
	})
	if res.Errors != 0 {
		t.Fatalf("load errors = %d", res.Errors)
	}

	urls := map[string]int{}
	got := 0
	deadline := time.After(5 * time.Second)
	for got < 20 {
		select {
		case tu, ok := <-sess.Results():
			if !ok {
				t.Fatalf("results closed early with %d tuples", got)
			}
			if tu.Parser == "http_get" && tu.Key != "" {
				urls[tu.Key]++
				got++
			}
		case <-deadline:
			t.Fatalf("timed out with %d/20 url tuples (stats %+v)", got, sess.MonitorStats())
		}
	}
	sess.Stop()
	for u, n := range urls {
		if n != 5 {
			t.Errorf("url %s count = %d, want 5 (sharded path lost or duplicated tuples)", u, n)
		}
	}

	// The sharded datapath was really active: ring-level produce counters
	// account for every batch of the session topic.
	shardSeen := false
	for _, topic := range e.Aggregation().Topics() {
		per := e.Aggregation().ShardStats(topic)
		if per == nil {
			t.Fatalf("topic %s has no shard stats with IngestShards=4", topic)
		}
		var appended uint64
		for _, ps := range per {
			for _, ss := range ps {
				appended += ss.Appended
			}
		}
		if appended != e.Aggregation().Stats(topic).Appended {
			t.Errorf("topic %s: shard appends %d != topic appends %d", topic, appended, e.Aggregation().Stats(topic).Appended)
		}
		if appended > 0 {
			shardSeen = true
		}
	}
	if !shardSeen {
		t.Error("no batches flowed through any ring shard")
	}
	found := false
	for _, p := range e.Metrics().Snapshot() {
		if p.Name == "mq_shard_occupancy" {
			found = true
			break
		}
	}
	if !found {
		t.Error("mq_shard_occupancy gauges not registered")
	}
}

// testFrame builds one TCP frame between two topology hosts.
func testFrame(src, dst *topology.Host) []byte {
	var b packet.Builder
	return b.TCP(packet.TCPSpec{
		Src: src.Addr, Dst: dst.Addr,
		SrcPort: 30000, DstPort: 80,
		Flags: packet.TCPFlagACK,
	})
}
