//go:build race

package core

// raceEnabled gates the statistical detection scenarios: they assert
// sigma-level shifts under real-time pacing, which the race detector's
// slowdown distorts. The insight CI job runs them race-free; the tier's
// concurrency surface stays under -race via its unit and lifecycle tests.
const raceEnabled = true
