package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	for _, k := range []int{0, 1, 3, 7, -4} {
		if _, err := New(k); err == nil {
			t.Errorf("New(%d): want error", k)
		}
	}
}

func TestFatTreeCountsK16(t *testing.T) {
	// The paper's simulated topology (§6.2): k=16 → 1024 hosts, 128 edge,
	// 128 aggregate and 64 core switches.
	ft := MustNew(16)
	if got := len(ft.Hosts()); got != 1024 {
		t.Errorf("hosts = %d, want 1024", got)
	}
	if got := len(ft.EdgeSwitches()); got != 128 {
		t.Errorf("edges = %d, want 128", got)
	}
	if got := len(ft.AggSwitches()); got != 128 {
		t.Errorf("aggs = %d, want 128", got)
	}
	if got := len(ft.CoreSwitches()); got != 64 {
		t.Errorf("cores = %d, want 64", got)
	}
}

func TestFatTreeStructureK4(t *testing.T) {
	ft := MustNew(4)
	if got := len(ft.Hosts()); got != 16 {
		t.Fatalf("hosts = %d, want 16", got)
	}
	for pod := 0; pod < 4; pod++ {
		if got := len(ft.EdgesOfPod(pod)); got != 2 {
			t.Errorf("pod %d edges = %d, want 2", pod, got)
		}
		if got := len(ft.AggsOfPod(pod)); got != 2 {
			t.Errorf("pod %d aggs = %d, want 2", pod, got)
		}
	}
	for _, e := range ft.EdgeSwitches() {
		hosts := ft.HostsUnderEdge(e.ID)
		if len(hosts) != 2 {
			t.Errorf("edge %d hosts = %d, want 2", e.ID, len(hosts))
		}
		for _, h := range hosts {
			if h.Edge != e.ID || h.Pod != e.Pod {
				t.Errorf("host %s edge/pod mismatch", h.Name)
			}
		}
	}
	for _, a := range ft.AggSwitches() {
		if got := len(ft.HostsUnderAgg(a.ID)); got != 4 {
			t.Errorf("agg %d covers %d hosts, want 4", a.ID, got)
		}
	}
}

func TestLookups(t *testing.T) {
	ft := MustNew(4)
	h := ft.Hosts()[5]
	if got := ft.HostByAddr(h.Addr); got != h {
		t.Errorf("HostByAddr(%v) = %v", h.Addr, got)
	}
	if got := ft.HostByName(h.Name); got != h {
		t.Errorf("HostByName(%q) = %v", h.Name, got)
	}
	if got := ft.HostByID(h.ID); got != h {
		t.Errorf("HostByID = %v", got)
	}
	if ft.HostByID(h.Edge) != nil {
		t.Error("HostByID(switch id) should be nil")
	}
	if sw := ft.SwitchByID(h.Edge); sw == nil || sw.Kind != KindEdge {
		t.Errorf("SwitchByID(edge) = %v", sw)
	}
	if ft.SwitchByID(h.ID) != nil {
		t.Error("SwitchByID(host id) should be nil")
	}
	if ft.HostsUnderAgg(h.Edge) != nil {
		t.Error("HostsUnderAgg(edge id) should be nil")
	}
}

func TestUniqueAddresses(t *testing.T) {
	ft := MustNew(8)
	seen := make(map[string]bool, len(ft.Hosts()))
	for _, h := range ft.Hosts() {
		key := h.Addr.String()
		if seen[key] {
			t.Fatalf("duplicate host address %s", key)
		}
		seen[key] = true
	}
}

func TestHopAndWeightedCost(t *testing.T) {
	ft := MustNew(4)
	hosts := ft.Hosts()
	sameRack := []*Host{hosts[0], hosts[1]} // first edge switch
	samePod := []*Host{hosts[0], hosts[2]}  // pod 0, different edges
	crossPod := []*Host{hosts[0], hosts[len(hosts)-1]}

	tests := []struct {
		name       string
		a, b       *Host
		hops       int
		weighted   int
		pathLength int
	}{
		{"same host", hosts[0], hosts[0], 0, 0, 0},
		{"same rack", sameRack[0], sameRack[1], 2, 2, 1},
		{"same pod", samePod[0], samePod[1], 4, 6, 3},
		{"cross pod", crossPod[0], crossPod[1], 6, 14, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.name == "same pod" && (tt.a.Pod != tt.b.Pod || tt.a.Edge == tt.b.Edge) {
				t.Fatalf("fixture wrong: %+v %+v", tt.a, tt.b)
			}
			if got := ft.HopCount(tt.a, tt.b); got != tt.hops {
				t.Errorf("HopCount = %d, want %d", got, tt.hops)
			}
			if got := ft.WeightedCost(tt.a, tt.b); got != tt.weighted {
				t.Errorf("WeightedCost = %d, want %d", got, tt.weighted)
			}
			if got := len(ft.SwitchPath(tt.a, tt.b)); got != tt.pathLength {
				t.Errorf("len(SwitchPath) = %d, want %d", got, tt.pathLength)
			}
		})
	}
}

func TestSwitchPathShape(t *testing.T) {
	ft := MustNew(8)
	hosts := ft.Hosts()
	a, b := hosts[0], hosts[len(hosts)-1]
	path := ft.SwitchPath(a, b)
	if len(path) != 5 {
		t.Fatalf("cross-pod path length = %d, want 5", len(path))
	}
	kinds := []NodeKind{KindEdge, KindAgg, KindCore, KindAgg, KindEdge}
	for i, id := range path {
		sw := ft.SwitchByID(id)
		if sw == nil || sw.Kind != kinds[i] {
			t.Errorf("path[%d] = %v, want kind %v", i, sw, kinds[i])
		}
	}
	if path[0] != a.Edge || path[4] != b.Edge {
		t.Error("path endpoints are not the hosts' ToR switches")
	}
	// Pinned paths: repeated computation is deterministic.
	again := ft.SwitchPath(a, b)
	for i := range path {
		if path[i] != again[i] {
			t.Fatal("SwitchPath not deterministic")
		}
	}
}

// Property: for random host pairs, the weighted cost is consistent with the
// hop count (2/2, 4/6, 6/14) and the switch path visits first-hop and
// last-hop ToR switches.
func TestPathCostProperty(t *testing.T) {
	ft := MustNew(8)
	hosts := ft.Hosts()
	r := rand.New(rand.NewSource(11))
	prop := func() bool {
		a := hosts[r.Intn(len(hosts))]
		b := hosts[r.Intn(len(hosts))]
		hops, w := ft.HopCount(a, b), ft.WeightedCost(a, b)
		switch hops {
		case 0:
			return w == 0 && a == b
		case 2:
			return w == 2 && a.Edge == b.Edge
		case 4:
			return w == 6 && a.Pod == b.Pod
		case 6:
			return w == 14 && a.Pod != b.Pod
		default:
			return false
		}
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestRandomizeResourcesRanges(t *testing.T) {
	ft := MustNew(4)
	ft.RandomizeResources(rand.New(rand.NewSource(3)))
	for _, h := range ft.Hosts() {
		r := h.Res
		if r.MemGB < 32 || r.MemGB > 128 {
			t.Errorf("%s mem = %.1f outside [32,128]", h.Name, r.MemGB)
		}
		if r.CPUCores < 12 || r.CPUCores > 24 {
			t.Errorf("%s cpu = %.1f outside [12,24]", h.Name, r.CPUCores)
		}
		cpuUtil := r.CPUUsed / r.CPUCores
		memUtil := r.MemUsed / r.MemGB
		if cpuUtil < 0.4-1e-9 || cpuUtil > 0.8+1e-9 {
			t.Errorf("%s cpu util = %.2f outside [0.4,0.8]", h.Name, cpuUtil)
		}
		if memUtil < 0.4-1e-9 || memUtil > 0.8+1e-9 {
			t.Errorf("%s mem util = %.2f outside [0.4,0.8]", h.Name, memUtil)
		}
	}
}

func TestAllocateRelease(t *testing.T) {
	h := &Host{Res: Resources{CPUCores: 4, MemGB: 8}}
	if !h.Allocate(2, 4) {
		t.Fatal("first Allocate failed")
	}
	if h.Allocate(3, 1) {
		t.Error("over-allocation of CPU succeeded")
	}
	if h.Allocate(1, 5) {
		t.Error("over-allocation of memory succeeded")
	}
	if !h.Allocate(2, 4) {
		t.Error("exact-fit Allocate failed")
	}
	h.Release(10, 20) // over-release clamps to zero
	if h.Res.CPUUsed != 0 || h.Res.MemUsed != 0 {
		t.Errorf("after over-release: %+v", h.Res)
	}
}

func TestNodeKindString(t *testing.T) {
	want := map[NodeKind]string{KindHost: "host", KindEdge: "edge", KindAgg: "agg", KindCore: "core", NodeKind(9): "kind(9)"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

func BenchmarkNewK16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := New(16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSwitchPath(b *testing.B) {
	ft := MustNew(16)
	hosts := ft.Hosts()
	a, c := hosts[0], hosts[len(hosts)-1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ft.SwitchPath(a, c)
	}
}
