// Package topology models the data-center network NetAlytics is deployed
// into: a three-level k-ary fat tree (Al-Fares et al., SIGCOMM'08) of hosts,
// top-of-rack (edge) switches, aggregate switches and core switches, plus the
// per-host CPU/memory capacities the placement algorithms consult.
//
// Link weights follow the paper's weighted-bandwidth metric: host↔ToR links
// weigh 1, ToR↔aggregate links weigh 2, and aggregate↔core links weigh 4,
// because cross-rack and especially cross-core traffic consumes scarcer
// resources.
package topology

import (
	"fmt"
	"math/rand"
	"net/netip"
)

// NodeKind distinguishes the four fat-tree levels.
type NodeKind int

// Node kinds, host through core.
const (
	KindHost NodeKind = iota + 1
	KindEdge
	KindAgg
	KindCore
)

func (k NodeKind) String() string {
	switch k {
	case KindHost:
		return "host"
	case KindEdge:
		return "edge"
	case KindAgg:
		return "agg"
	case KindCore:
		return "core"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// NodeID identifies a node (host or switch) within one FatTree.
type NodeID int32

// Link weights used by the weighted-bandwidth cost metric.
const (
	WeightHostToEdge = 1
	WeightEdgeToAgg  = 2
	WeightAggToCore  = 4
)

// Resources describes a host's capacity and current (background) usage.
type Resources struct {
	CPUCores float64 // total cores
	MemGB    float64 // total memory
	CPUUsed  float64
	MemUsed  float64
}

// FreeCPU returns the unreserved cores.
func (r Resources) FreeCPU() float64 { return r.CPUCores - r.CPUUsed }

// FreeMem returns the unreserved memory in GB.
func (r Resources) FreeMem() float64 { return r.MemGB - r.MemUsed }

// Host is a server at a fat-tree leaf.
type Host struct {
	ID   NodeID
	Name string
	Addr netip.Addr
	Edge NodeID // the ToR switch the host hangs off
	Pod  int
	Res  Resources
}

// Switch is an edge, aggregate or core switch.
type Switch struct {
	ID   NodeID
	Kind NodeKind
	Pod  int // -1 for core switches
}

// FatTree is an immutable k-ary fat-tree topology. Use New to build one.
type FatTree struct {
	K int

	hosts    []*Host
	edges    []*Switch
	aggs     []*Switch
	cores    []*Switch
	byID     map[NodeID]any // *Host or *Switch
	byAddr   map[netip.Addr]*Host
	byName   map[string]*Host
	edgeHost map[NodeID][]*Host // ToR -> hosts
	podEdges map[int][]*Switch
	podAggs  map[int][]*Switch
}

// New builds a fat tree with parameter k (k must be even and >= 2). The tree
// has k pods, each with k/2 edge and k/2 aggregate switches, k/2 hosts per
// edge switch, and (k/2)^2 core switches — k=16 yields the paper's simulated
// topology: 1024 hosts, 128 edge, 128 aggregate and 64 core switches.
func New(k int) (*FatTree, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topology: k must be even and >= 2, got %d", k)
	}
	half := k / 2
	nHosts := k * half * half
	t := &FatTree{
		K:        k,
		hosts:    make([]*Host, 0, nHosts),
		edges:    make([]*Switch, 0, k*half),
		aggs:     make([]*Switch, 0, k*half),
		cores:    make([]*Switch, 0, half*half),
		byID:     make(map[NodeID]any, nHosts+2*k*half+half*half),
		byAddr:   make(map[netip.Addr]*Host, nHosts),
		byName:   make(map[string]*Host, nHosts),
		edgeHost: make(map[NodeID][]*Host, k*half),
		podEdges: make(map[int][]*Switch, k),
		podAggs:  make(map[int][]*Switch, k),
	}

	next := NodeID(0)
	alloc := func() NodeID { id := next; next++; return id }

	for pod := 0; pod < k; pod++ {
		for e := 0; e < half; e++ {
			sw := &Switch{ID: alloc(), Kind: KindEdge, Pod: pod}
			t.edges = append(t.edges, sw)
			t.byID[sw.ID] = sw
			t.podEdges[pod] = append(t.podEdges[pod], sw)
			for h := 0; h < half; h++ {
				host := &Host{
					ID:   alloc(),
					Name: fmt.Sprintf("h%d-%d-%d", pod, e, h),
					Addr: netip.AddrFrom4([4]byte{10, byte(pod), byte(e), byte(h + 2)}),
					Edge: sw.ID,
					Pod:  pod,
				}
				t.hosts = append(t.hosts, host)
				t.byID[host.ID] = host
				t.byAddr[host.Addr] = host
				t.byName[host.Name] = host
				t.edgeHost[sw.ID] = append(t.edgeHost[sw.ID], host)
			}
		}
		for a := 0; a < half; a++ {
			sw := &Switch{ID: alloc(), Kind: KindAgg, Pod: pod}
			t.aggs = append(t.aggs, sw)
			t.byID[sw.ID] = sw
			t.podAggs[pod] = append(t.podAggs[pod], sw)
		}
	}
	for c := 0; c < half*half; c++ {
		sw := &Switch{ID: alloc(), Kind: KindCore, Pod: -1}
		t.cores = append(t.cores, sw)
		t.byID[sw.ID] = sw
	}
	return t, nil
}

// MustNew is New for parameters known valid at compile time; it panics on error.
func MustNew(k int) *FatTree {
	t, err := New(k)
	if err != nil {
		panic(err)
	}
	return t
}

// Hosts returns all hosts in construction order.
func (t *FatTree) Hosts() []*Host { return t.hosts }

// EdgeSwitches returns all ToR switches.
func (t *FatTree) EdgeSwitches() []*Switch { return t.edges }

// AggSwitches returns all aggregate switches.
func (t *FatTree) AggSwitches() []*Switch { return t.aggs }

// CoreSwitches returns all core switches.
func (t *FatTree) CoreSwitches() []*Switch { return t.cores }

// HostByAddr resolves an IP address to its host, or nil.
func (t *FatTree) HostByAddr(a netip.Addr) *Host { return t.byAddr[a] }

// HostByName resolves a hostname to its host, or nil.
func (t *FatTree) HostByName(name string) *Host { return t.byName[name] }

// HostByID resolves a node ID to a host, or nil when the ID names a switch.
func (t *FatTree) HostByID(id NodeID) *Host {
	h, _ := t.byID[id].(*Host)
	return h
}

// SwitchByID resolves a node ID to a switch, or nil when the ID names a host.
func (t *FatTree) SwitchByID(id NodeID) *Switch {
	s, _ := t.byID[id].(*Switch)
	return s
}

// HostsUnderEdge returns the hosts attached to a ToR switch.
func (t *FatTree) HostsUnderEdge(edge NodeID) []*Host { return t.edgeHost[edge] }

// EdgesOfPod returns the ToR switches of a pod.
func (t *FatTree) EdgesOfPod(pod int) []*Switch { return t.podEdges[pod] }

// AggsOfPod returns the aggregate switches of a pod.
func (t *FatTree) AggsOfPod(pod int) []*Switch { return t.podAggs[pod] }

// HostsUnderAgg returns all hosts reachable below an aggregate switch, i.e.
// every host in the switch's pod.
func (t *FatTree) HostsUnderAgg(agg NodeID) []*Host {
	sw := t.SwitchByID(agg)
	if sw == nil || sw.Kind != KindAgg {
		return nil
	}
	var out []*Host
	for _, e := range t.podEdges[sw.Pod] {
		out = append(out, t.edgeHost[e.ID]...)
	}
	return out
}

// HopCount returns the number of switch-to-switch-to-host link traversals
// between two hosts: 0 within one host, 2 within a rack, 4 within a pod, 6
// across the core.
func (t *FatTree) HopCount(a, b *Host) int {
	switch {
	case a.ID == b.ID:
		return 0
	case a.Edge == b.Edge:
		return 2
	case a.Pod == b.Pod:
		return 4
	default:
		return 6
	}
}

// WeightedCost returns the paper's weighted path cost between two hosts,
// summing per-link weights (host-ToR 1, ToR-agg 2, agg-core 4) along the
// shortest path: 2 within a rack, 6 within a pod, 14 across the core.
func (t *FatTree) WeightedCost(a, b *Host) int {
	switch {
	case a.ID == b.ID:
		return 0
	case a.Edge == b.Edge:
		return 2 * WeightHostToEdge
	case a.Pod == b.Pod:
		return 2*WeightHostToEdge + 2*WeightEdgeToAgg
	default:
		return 2*WeightHostToEdge + 2*WeightEdgeToAgg + 2*WeightAggToCore
	}
}

// SwitchPath returns the ordered switch IDs a frame traverses from host a to
// host b. ECMP-style choices (which aggregate, which core) are resolved
// deterministically from a hash of the endpoint pair so that a flow is pinned
// to one path.
func (t *FatTree) SwitchPath(a, b *Host) []NodeID {
	if a.ID == b.ID {
		return nil
	}
	if a.Edge == b.Edge {
		return []NodeID{a.Edge}
	}
	h := pathHash(a.ID, b.ID)
	if a.Pod == b.Pod {
		aggs := t.podAggs[a.Pod]
		agg := aggs[h%uint64(len(aggs))]
		return []NodeID{a.Edge, agg.ID, b.Edge}
	}
	upAggs := t.podAggs[a.Pod]
	downAggs := t.podAggs[b.Pod]
	up := upAggs[h%uint64(len(upAggs))]
	core := t.cores[h%uint64(len(t.cores))]
	down := downAggs[h%uint64(len(downAggs))]
	return []NodeID{a.Edge, up.ID, core.ID, down.ID, b.Edge}
}

func pathHash(a, b NodeID) uint64 {
	x := uint64(a)<<32 | uint64(uint32(b))
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// RandomizeResources assigns each host a capacity and background utilization
// drawn from the paper's simulation ranges: 32–128 GB memory, 12–24 CPU
// cores, both 40–80 % utilized.
func (t *FatTree) RandomizeResources(rng *rand.Rand) {
	for _, h := range t.hosts {
		mem := 32 + rng.Float64()*(128-32)
		cpu := 12 + rng.Float64()*(24-12)
		util := 0.4 + rng.Float64()*0.4
		h.Res = Resources{
			CPUCores: cpu,
			MemGB:    mem,
			CPUUsed:  cpu * util,
			MemUsed:  mem * util,
		}
	}
}

// Allocate reserves cpu cores and mem GB on the host, returning false
// without side effects when capacity is insufficient.
func (h *Host) Allocate(cpu, mem float64) bool {
	if h.Res.FreeCPU() < cpu || h.Res.FreeMem() < mem {
		return false
	}
	h.Res.CPUUsed += cpu
	h.Res.MemUsed += mem
	return true
}

// Release returns previously allocated resources.
func (h *Host) Release(cpu, mem float64) {
	h.Res.CPUUsed -= cpu
	h.Res.MemUsed -= mem
	if h.Res.CPUUsed < 0 {
		h.Res.CPUUsed = 0
	}
	if h.Res.MemUsed < 0 {
		h.Res.MemUsed = 0
	}
}
