// Package telemetry is the pipeline's self-monitoring plane: a process-wide
// registry of atomic counters, gauges and lock-free histograms with
// name+label identity, a sampled stage-latency tracer that follows tuples
// from vnet capture to the session result sink, and exporters (periodic JSON
// dumps, an HTTP /metrics handler) that publish live snapshots.
//
// The paper's evaluation (Figs. 13-14) needs per-stage latency CDFs and
// per-layer throughput counters for the monitoring system itself; DRST and
// D-STREAMON argue this self-telemetry must be near-zero cost on the data
// path. Every instrument here is a single atomic operation on the hot path,
// tracing is sampled 1-in-N, and all aggregation happens at snapshot time.
package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value dimension of a metric.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing counter. The zero value is ready to
// use; counters obtained from a Registry are additionally exported by
// snapshots. All methods are safe for concurrent use, cost one atomic
// operation, and tolerate a nil receiver (increments vanish) so structs
// embedding an optional counter work uninitialized.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. The zero value is ready to use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Kind names in snapshot points.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// Point is one metric in a registry snapshot. Counters and gauges carry
// Value; histograms carry Count/Sum and the interpolated percentiles plus
// the full bucket snapshot (Hist) for consumers that need the distribution
// itself — e.g. the insight feeder diffing consecutive snapshots to detect
// shape changes. Hist is excluded from JSON exports to keep dumps compact.
type Point struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Kind   string            `json:"kind"`
	Value  float64           `json:"value"`
	Count  uint64            `json:"count,omitempty"`
	Sum    float64           `json:"sum,omitempty"`
	P50    float64           `json:"p50,omitempty"`
	P95    float64           `json:"p95,omitempty"`
	P99    float64           `json:"p99,omitempty"`
	Hist   *HistSnapshot     `json:"-"`
}

// entry is one registered metric; exactly one of the instrument fields is
// non-nil. fn is an atomic pointer because GaugeFunc re-registration races
// concurrent Snapshots (which read fn after dropping the registry lock).
type entry struct {
	name    string
	labels  []Label
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      atomic.Pointer[func() float64]
}

// Registry holds metrics by name+label identity. Get-or-create accessors
// return the same instrument for the same identity, so layers created at
// different times share series naturally. A nil *Registry is valid
// everywhere: accessors return live but unregistered instruments and
// registration methods are no-ops, which lets instrumented packages run
// without a telemetry plane at zero configuration cost.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// ident builds the canonical identity string, sorting labels so declaration
// order never splits a series.
func ident(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// lookup returns the entry for an identity, creating it via make when absent.
// A kind mismatch (same identity registered as a different instrument)
// returns nil and the caller hands back a standalone instrument.
func (r *Registry) lookup(name string, labels []Label, make func(*entry)) *entry {
	key := ident(name, labels)
	r.mu.RLock()
	e, ok := r.entries[key]
	r.mu.RUnlock()
	if ok {
		return e
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok = r.entries[key]; ok {
		return e
	}
	e = &entry{name: name, labels: append([]Label(nil), labels...)}
	make(e)
	r.entries[key] = e
	return e
}

// Counter returns the counter for name+labels, creating it on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return &Counter{}
	}
	e := r.lookup(name, labels, func(e *entry) { e.counter = &Counter{} })
	if e.counter == nil {
		return &Counter{}
	}
	return e.counter
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	e := r.lookup(name, labels, func(e *entry) { e.gauge = &Gauge{} })
	if e.gauge == nil {
		return &Gauge{}
	}
	return e.gauge
}

// Histogram returns the histogram for name+labels, creating it on first use.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return &Histogram{}
	}
	e := r.lookup(name, labels, func(e *entry) { e.hist = &Histogram{} })
	if e.hist == nil {
		return &Histogram{}
	}
	return e.hist
}

// GaugeFunc registers a gauge whose value is sampled at snapshot time —
// the idiom for occupancy-style metrics (queue depths, buffer backlogs) that
// are cheap to read but wasteful to push. fn must not call back into the
// registry. Re-registering the same identity replaces the function.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	e := r.lookup(name, labels, func(e *entry) {})
	e.fn.Store(&fn)
}

// DropLabeled removes every metric carrying label key=value. Sessions use it
// to retire their per-session series when they stop, so long-lived processes
// (the REPL, the live exporter) don't accumulate dead series.
func (r *Registry) DropLabeled(key, value string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for id, e := range r.entries {
		for _, l := range e.labels {
			if l.Key == key && l.Value == value {
				delete(r.entries, id)
				break
			}
		}
	}
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// Snapshot returns every metric as a Point, sorted by name then labels, so
// exports are deterministic and diffable.
func (r *Registry) Snapshot() []Point {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	entries := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.RUnlock()

	points := make([]Point, 0, len(entries))
	for _, e := range entries {
		p := Point{Name: e.name}
		if len(e.labels) > 0 {
			p.Labels = make(map[string]string, len(e.labels))
			for _, l := range e.labels {
				p.Labels[l.Key] = l.Value
			}
		}
		switch {
		case e.counter != nil:
			p.Kind = KindCounter
			p.Value = float64(e.counter.Value())
		case e.gauge != nil:
			p.Kind = KindGauge
			p.Value = e.gauge.Value()
		case e.hist != nil:
			p.Kind = KindHistogram
			// One bucket copy serves the percentiles and the exported
			// distribution, so all of the point's fields are consistent.
			hs := e.hist.Snapshot()
			p.Count = hs.Count
			p.Sum = hs.Sum
			p.P50 = hs.Quantile(0.50)
			p.P95 = hs.Quantile(0.95)
			p.P99 = hs.Quantile(0.99)
			p.Hist = &hs
		default:
			if f := e.fn.Load(); f != nil {
				p.Kind = KindGauge
				p.Value = (*f)()
			}
		}
		points = append(points, p)
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].Name != points[j].Name {
			return points[i].Name < points[j].Name
		}
		return labelString(points[i].Labels) < labelString(points[j].Labels)
	})
	return points
}

func labelString(m map[string]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(m[k])
		b.WriteByte(',')
	}
	return b.String()
}

// WriteJSON writes the snapshot as an indented JSON array.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	points := r.Snapshot()
	if points == nil {
		points = []Point{}
	}
	return enc.Encode(points)
}
