package telemetry

// Sampling-period flags (-trace-every, -insight-every and their Config
// counterparts) share one tri-state contract, resolved by SamplePeriod:
//
//	 0  = default — use the subsystem's default period
//	 1  = every   — sample every event / tick (no reduction)
//	 N  = 1-in-N  — sample every N-th event / tick
//	-1  = off     — disable the sampled subsystem entirely
//
// Any negative value means off. Resolution happens once at configuration
// time (core.Config.withDefaults, flag parsing); downstream code only ever
// sees the resolved period, where 0 now unambiguously means disabled.

// SamplePeriod resolves a tri-state period flag against the subsystem's
// default: 0 selects def, negative values resolve to 0 (disabled), and
// positive values pass through unchanged.
func SamplePeriod(flag, def int) int {
	switch {
	case flag < 0:
		return 0
	case flag == 0:
		return def
	default:
		return flag
	}
}
