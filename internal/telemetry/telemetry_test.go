package telemetry

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"netalytics/internal/tuple"
)

func TestRegistryIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits", L("host", "h1"), L("session", "q1"))
	b := r.Counter("hits", L("session", "q1"), L("host", "h1")) // label order irrelevant
	if a != b {
		t.Error("same identity returned distinct counters")
	}
	c := r.Counter("hits", L("host", "h2"), L("session", "q1"))
	if a == c {
		t.Error("distinct labels shared a counter")
	}
	a.Add(2)
	b.Inc()
	if a.Value() != 3 {
		t.Errorf("Value = %d, want 3", a.Value())
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
}

func TestRegistryKindMismatch(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	g := r.Gauge("x") // same identity, different kind: standalone fallback
	g.Set(5)
	if g.Value() != 5 {
		t.Error("standalone gauge not live")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
}

func TestNilRegistry(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(7)
	if c.Value() != 7 {
		t.Error("nil-registry counter not live")
	}
	r.Gauge("y").Set(1)
	r.Histogram("z").Observe(1)
	r.GaugeFunc("f", func() float64 { return 0 })
	r.DropLabeled("a", "b")
	if r.Len() != 0 || r.Snapshot() != nil {
		t.Error("nil registry not empty")
	}
}

func TestNilCounter(t *testing.T) {
	var c *Counter
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Error("nil counter returned non-zero")
	}
}

func TestSnapshotSortedAndTyped(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_count").Add(4)
	r.Gauge("a_gauge").Set(2.5)
	r.GaugeFunc("c_fn", func() float64 { return 9 })
	h := r.Histogram("d_hist")
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	points := r.Snapshot()
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	names := []string{"a_gauge", "b_count", "c_fn", "d_hist"}
	kinds := []string{KindGauge, KindCounter, KindGauge, KindHistogram}
	for i, p := range points {
		if p.Name != names[i] || p.Kind != kinds[i] {
			t.Errorf("points[%d] = %s/%s, want %s/%s", i, p.Name, p.Kind, names[i], kinds[i])
		}
	}
	if points[0].Value != 2.5 || points[1].Value != 4 || points[2].Value != 9 {
		t.Errorf("values: %+v", points[:3])
	}
	hp := points[3]
	if hp.Count != 100 || hp.Sum != 5050 {
		t.Errorf("hist count/sum = %d/%v", hp.Count, hp.Sum)
	}
	if hp.P50 <= 0 || hp.P50 > hp.P95 || hp.P95 > hp.P99 {
		t.Errorf("percentiles not monotone: %v %v %v", hp.P50, hp.P95, hp.P99)
	}
}

func TestDropLabeled(t *testing.T) {
	r := NewRegistry()
	r.Counter("a", L("session", "q1"))
	r.Counter("a", L("session", "q2"))
	r.Counter("b")
	r.DropLabeled("session", "q1")
	if r.Len() != 2 {
		t.Errorf("Len after drop = %d, want 2", r.Len())
	}
	for _, p := range r.Snapshot() {
		if p.Labels["session"] == "q1" {
			t.Error("dropped series still snapshotted")
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Error("empty histogram not zero")
	}
	h.Observe(-5) // clamps to 0
	if h.Count() != 1 || h.Sum() != 0 {
		t.Errorf("negative clamp: count=%d sum=%v", h.Count(), h.Sum())
	}

	var u Histogram
	// 1000 uniform samples in [0, 1e6): quantiles must land within the
	// power-of-two bucket of the true value.
	for i := int64(0); i < 1000; i++ {
		u.Observe(i * 1000)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got := u.Quantile(q)
		want := q * 1e6
		if got < want/2-1 || got > want*2+1 {
			t.Errorf("Quantile(%v) = %v, want within 2x of %v", q, got, want)
		}
	}
	if u.Quantile(0.5) > u.Quantile(0.95) || u.Quantile(0.95) > u.Quantile(0.99) {
		t.Error("quantiles not monotone")
	}
	if m := u.Mean(); math.Abs(m-499500) > 1 {
		t.Errorf("Mean = %v", m)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 1000; i++ {
				h.Observe(i)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("Count = %d", h.Count())
	}
}

func TestTracerSampling(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(r, 4)
	if !tr.Enabled() || tr.SampleEvery() != 4 {
		t.Fatal("tracer not enabled at every=4")
	}
	stamped := 0
	for i := 0; i < 100; i++ {
		tu := tuple.Tuple{TS: int64(1000 + i)}
		tr.MaybeStamp(&tu)
		if tu.Trace != nil {
			stamped++
			if tu.Trace.CaptureNS != tu.TS {
				t.Error("capture stamp != tuple TS")
			}
			if tu.Trace.ParseNS == 0 {
				t.Error("parse stamp missing")
			}
		}
	}
	if stamped != 25 {
		t.Errorf("stamped = %d, want 25 (1-in-4 of 100)", stamped)
	}
}

func TestTracerDisabledAndNil(t *testing.T) {
	var nilTracer *Tracer
	if nilTracer.Enabled() || nilTracer.SampleEvery() != 0 {
		t.Error("nil tracer not disabled")
	}
	tu := tuple.Tuple{TS: 1}
	nilTracer.MaybeStamp(&tu)
	nilTracer.ObserveSink(&tuple.Trace{}, 1)
	if nilTracer.StageSummaries() != nil {
		t.Error("nil tracer summaries not nil")
	}

	off := NewTracer(NewRegistry(), -1)
	if off.Enabled() {
		t.Error("every<=0 tracer enabled")
	}
	off.MaybeStamp(&tu)
	if tu.Trace != nil {
		t.Error("disabled tracer stamped a tuple")
	}
	sums := off.StageSummaries()
	if len(sums) != len(Stages) {
		t.Fatalf("summaries = %d, want %d", len(sums), len(Stages))
	}
	for _, s := range sums {
		if s.Count != 0 {
			t.Errorf("stage %s count = %d", s.Stage, s.Count)
		}
	}
}

func TestObserveSinkStageMath(t *testing.T) {
	tr := NewTracer(NewRegistry(), 1, L("session", "q1"))
	trace := &tuple.Trace{CaptureNS: 100, ParseNS: 300, ProduceNS: 700, ConsumeNS: 1500}
	tr.ObserveSink(trace, 3100)
	want := map[string]float64{
		StageCaptureToParse: 200,  // 300-100
		StageParseToMQ:      400,  // 700-300
		StageMQToStream:     800,  // 1500-700
		StageStreamToSink:   1600, // 3100-1500
		StageEndToEnd:       3000, // 3100-100
	}
	for _, s := range tr.StageSummaries() {
		if s.Count != 1 {
			t.Errorf("stage %s count = %d", s.Stage, s.Count)
			continue
		}
		if math.Abs(s.MeanNS-want[s.Stage]) > 0.5 {
			t.Errorf("stage %s mean = %v, want %v", s.Stage, s.MeanNS, want[s.Stage])
		}
	}

	// Partial traces record only the stages whose stamps exist; out-of-order
	// clocks clamp to zero rather than recording negatives.
	tr2 := NewTracer(NewRegistry(), 1)
	tr2.ObserveSink(&tuple.Trace{ParseNS: 500}, 400)
	for _, s := range tr2.StageSummaries() {
		switch s.Stage {
		case StageCaptureToParse, StageParseToMQ, StageMQToStream, StageStreamToSink, StageEndToEnd:
			if s.Count != 0 {
				t.Errorf("stage %s recorded from partial trace", s.Stage)
			}
		}
	}
}

func TestPropagateBatchClones(t *testing.T) {
	orig := &tuple.Trace{CaptureNS: 10, ParseNS: 20}
	tuples := []tuple.Tuple{{Trace: orig}, {}, {Trace: orig}}
	PropagateBatch(tuples, 100, 200)
	if orig.ProduceNS != 0 || orig.ConsumeNS != 0 {
		t.Error("PropagateBatch mutated the shared trace")
	}
	for _, i := range []int{0, 2} {
		tr := tuples[i].Trace
		if tr == orig {
			t.Errorf("tuple %d trace not cloned", i)
		}
		if tr.CaptureNS != 10 || tr.ParseNS != 20 || tr.ProduceNS != 100 || tr.ConsumeNS != 200 {
			t.Errorf("tuple %d trace = %+v", i, tr)
		}
	}
	if tuples[1].Trace != nil {
		t.Error("untraced tuple gained a trace")
	}
}

func TestFileExporter(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Add(3)
	path := t.TempDir() + "/dump.json"
	exp := NewFileExporter(r, path, 10*time.Millisecond)
	exp.Start()
	time.Sleep(35 * time.Millisecond)
	exp.Stop()
	exp.Stop() // idempotent

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("dump missing: %v", err)
	}
	var d Dump
	if err := json.Unmarshal(data, &d); err != nil {
		t.Fatalf("dump not JSON: %v", err)
	}
	if d.TS.IsZero() || len(d.Metrics) != 1 || d.Metrics[0].Name != "x" || d.Metrics[0].Value != 3 {
		t.Errorf("dump = %+v", d)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("temp file left behind")
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	r.Gauge("depth").Set(12)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	var d Dump
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	if len(d.Metrics) != 1 || d.Metrics[0].Name != "depth" || d.Metrics[0].Value != 12 {
		t.Errorf("dump = %+v", d)
	}
}
