package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// histBuckets is the fixed bucket count: bucket i covers [2^i, 2^(i+1))
// nanoseconds, so 64 buckets span sub-microsecond dispatch costs through
// multi-minute stalls with ~2x resolution — the right shape for latency,
// where relative error matters and tail buckets must never saturate.
const histBuckets = 64

// Histogram is a lock-free latency histogram over power-of-two nanosecond
// buckets. Observe is three atomic adds and never allocates; quantiles are
// interpolated from bucket boundaries at read time. The zero value is ready
// to use.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one value (nanoseconds for latency histograms). Negative
// values clamp to zero; zero lands in the first bucket.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketFor(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(v))
}

// bucketFor maps a value to its power-of-two bucket index.
func bucketFor(v int64) int {
	if v < 1 {
		return 0
	}
	return bits.Len64(uint64(v)) - 1
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return float64(h.sum.Load()) }

// Mean returns the arithmetic mean of the observations, or 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile estimates the q-th quantile (0 < q <= 1) by locating the bucket
// holding the target rank and interpolating linearly between its bounds.
// Accuracy is bounded by the 2x bucket width, which is ample for the p50/p95/
// p99 stage breakdowns the exporter reports. Returns 0 for an empty
// histogram.
func (h *Histogram) Quantile(q float64) float64 {
	return h.Snapshot().Quantile(q)
}

// HistSnapshot is a point-in-time copy of a histogram's buckets: the shape
// consumers iterate, diff and derive quantiles from without re-reading the
// live atomics. Count is always the sum of Buckets, so a snapshot is
// internally consistent even when taken against concurrent Observes (the
// live count atomic can momentarily disagree with the bucket totals).
type HistSnapshot struct {
	Count   uint64
	Sum     float64
	Buckets [histBuckets]uint64
}

// Snapshot copies the histogram's current buckets. Observes racing the copy
// land in either the snapshot or the next one; the snapshot itself stays
// consistent because Count is derived from the copied buckets.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := 0; i < histBuckets; i++ {
		c := h.buckets[i].Load()
		s.Buckets[i] = c
		s.Count += c
	}
	s.Sum = float64(h.sum.Load())
	return s
}

// NumBuckets returns the fixed bucket count of every histogram; bucket i
// covers values in [2^i, 2^(i+1)), with bucket 0 also absorbing zero.
func NumBuckets() int { return histBuckets }

// BucketBounds returns bucket i's value range [lo, hi).
func BucketBounds(i int) (lo, hi float64) {
	if i <= 0 {
		return 0, 2
	}
	lo = float64(uint64(1) << uint(i))
	return lo, lo * 2
}

// Sub returns the bucket-wise difference s - prev: the distribution of
// observations recorded between the two snapshots. Buckets that shrank
// (prev taken after s, or different histograms) clamp to zero rather than
// wrap, and Count is recomputed from the clamped buckets.
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	var d HistSnapshot
	for i := 0; i < histBuckets; i++ {
		if s.Buckets[i] > prev.Buckets[i] {
			d.Buckets[i] = s.Buckets[i] - prev.Buckets[i]
			d.Count += d.Buckets[i]
		}
	}
	if s.Sum > prev.Sum {
		d.Sum = s.Sum - prev.Sum
	}
	return d
}

// Mean returns the mean of the snapshotted observations, or 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-th quantile of the snapshot by linear
// interpolation inside the bucket holding the target rank. Returns 0 for an
// empty snapshot. This is the single quantile implementation: the live
// histogram and every snapshot consumer (exporters, the insight feeder's
// windowed deltas) share it, so nothing re-derives values from the pow2
// buckets independently.
func (s HistSnapshot) Quantile(q float64) float64 {
	n := s.Count
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(n)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	last := 0 // highest non-empty bucket, for the defensive fallback below
	for i := 0; i < histBuckets; i++ {
		c := s.Buckets[i]
		if c == 0 {
			continue
		}
		last = i
		cum += c
		if cum >= target {
			lo, hi := BucketBounds(i)
			// Position of the target rank within this bucket.
			frac := float64(target-(cum-c)) / float64(c)
			return lo + frac*(hi-lo)
		}
	}
	// Unreachable when Count == sum(Buckets) (which Snapshot/Sub guarantee),
	// but a hand-built snapshot with an inflated Count used to fall through
	// to 2^63 here; answer with the top populated bucket's bound instead.
	_, hi := BucketBounds(last)
	return hi
}
