package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// histBuckets is the fixed bucket count: bucket i covers [2^i, 2^(i+1))
// nanoseconds, so 64 buckets span sub-microsecond dispatch costs through
// multi-minute stalls with ~2x resolution — the right shape for latency,
// where relative error matters and tail buckets must never saturate.
const histBuckets = 64

// Histogram is a lock-free latency histogram over power-of-two nanosecond
// buckets. Observe is three atomic adds and never allocates; quantiles are
// interpolated from bucket boundaries at read time. The zero value is ready
// to use.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one value (nanoseconds for latency histograms). Negative
// values clamp to zero; zero lands in the first bucket.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketFor(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(v))
}

// bucketFor maps a value to its power-of-two bucket index.
func bucketFor(v int64) int {
	if v < 1 {
		return 0
	}
	return bits.Len64(uint64(v)) - 1
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return float64(h.sum.Load()) }

// Mean returns the arithmetic mean of the observations, or 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile estimates the q-th quantile (0 < q <= 1) by locating the bucket
// holding the target rank and interpolating linearly between its bounds.
// Accuracy is bounded by the 2x bucket width, which is ample for the p50/p95/
// p99 stage breakdowns the exporter reports. Returns 0 for an empty
// histogram.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(n)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum >= target {
			lo := float64(uint64(1) << uint(i))
			if i == 0 {
				lo = 0
			}
			hi := lo * 2
			if i == 0 {
				hi = 2
			}
			// Position of the target rank within this bucket.
			frac := float64(target-(cum-c)) / float64(c)
			return lo + frac*(hi-lo)
		}
	}
	return float64(uint64(1) << (histBuckets - 1))
}
