package telemetry

import (
	"time"

	"netalytics/internal/tuple"
)

// DefaultSampleEvery is the default trace sampling period: one traced tuple
// per 64 emitted. At typical batch sizes this keeps tracing cost well under
// the 5% budget while still gathering thousands of latency samples per
// second under load.
const DefaultSampleEvery = 64

// Stage names, in pipeline order. They match the paper's Fig. 13-14 latency
// breakdown: the time from packet capture to parser emit, emit to
// aggregation-layer append (includes output batching wait), append to stream
// spout poll (queue occupancy), and poll to result delivery (stream
// processing), plus the full capture-to-sink path.
const (
	StageCaptureToParse = "capture_to_parse"
	StageParseToMQ      = "parse_to_mq"
	StageMQToStream     = "mq_to_stream"
	StageStreamToSink   = "stream_to_sink"
	StageEndToEnd       = "end_to_end"
)

// Stages lists the stage names in pipeline order.
var Stages = []string{StageCaptureToParse, StageParseToMQ, StageMQToStream, StageStreamToSink, StageEndToEnd}

// StageSummary is the percentile digest of one stage's latency histogram.
type StageSummary struct {
	Stage  string  `json:"stage"`
	Count  uint64  `json:"count"`
	MeanNS float64 `json:"mean_ns"`
	P50NS  float64 `json:"p50_ns"`
	P95NS  float64 `json:"p95_ns"`
	P99NS  float64 `json:"p99_ns"`
}

// Tracer samples 1-in-N tuples at monitor emit and accumulates their
// per-stage latencies into registry histograms. A nil or disabled tracer
// costs one branch per tuple on the emit path and nothing elsewhere; an
// enabled tracer costs one atomic increment per tuple plus a timestamp and a
// small allocation for each sampled tuple.
type Tracer struct {
	every uint64 // 0 = disabled
	seq   Counter
	stage [5]*Histogram // one per entry of Stages, pipeline order
}

// NewTracer creates a tracer sampling one in every tuples, registering its
// stage histograms as pipeline_latency_ns{stage=...} plus the given labels.
// every <= 0 disables sampling entirely (Enabled reports false and MaybeStamp
// is a no-op); the stage histograms still exist so summaries always cover
// all stages.
func NewTracer(reg *Registry, every int, labels ...Label) *Tracer {
	t := &Tracer{}
	if every > 0 {
		t.every = uint64(every)
	}
	for i, name := range Stages {
		ls := append([]Label{L("stage", name)}, labels...)
		t.stage[i] = reg.Histogram("pipeline_latency_ns", ls...)
	}
	return t
}

// Enabled reports whether the tracer stamps tuples.
func (t *Tracer) Enabled() bool { return t != nil && t.every > 0 }

// SampleEvery returns the sampling period (0 when disabled).
func (t *Tracer) SampleEvery() int {
	if t == nil {
		return 0
	}
	return int(t.every)
}

// MaybeStamp attaches a trace record to one in every N tuples, recording the
// capture timestamp (the tuple's observation time) and the parse-emit time.
// Called on the monitor's emit path; unsampled tuples cost one atomic
// increment, and a nil/disabled tracer costs one branch.
func (t *Tracer) MaybeStamp(tu *tuple.Tuple) {
	if t == nil || t.every == 0 {
		return
	}
	if t.seq.v.Add(1)%t.every != 0 {
		return
	}
	now := time.Now().UnixNano()
	tr := &tuple.Trace{ParseNS: now}
	if tu.TS > 0 {
		tr.CaptureNS = tu.TS
	}
	tu.Trace = tr
}

// ObserveSink completes a trace at result delivery, recording every stage
// whose boundary stamps are present. Latencies are clamped at zero so clock
// re-reads across goroutines never record negative durations.
func (t *Tracer) ObserveSink(tr *tuple.Trace, sinkNS int64) {
	if t == nil || tr == nil {
		return
	}
	if tr.CaptureNS > 0 && tr.ParseNS > 0 {
		t.stage[0].Observe(clampNS(tr.ParseNS - tr.CaptureNS))
	}
	if tr.ParseNS > 0 && tr.ProduceNS > 0 {
		t.stage[1].Observe(clampNS(tr.ProduceNS - tr.ParseNS))
	}
	if tr.ProduceNS > 0 && tr.ConsumeNS > 0 {
		t.stage[2].Observe(clampNS(tr.ConsumeNS - tr.ProduceNS))
	}
	if tr.ConsumeNS > 0 {
		t.stage[3].Observe(clampNS(sinkNS - tr.ConsumeNS))
	}
	if tr.CaptureNS > 0 {
		t.stage[4].Observe(clampNS(sinkNS - tr.CaptureNS))
	}
}

func clampNS(d int64) int64 {
	if d < 0 {
		return 0
	}
	return d
}

// StageSummaries digests every stage histogram, in pipeline order. All five
// stages are always present (with zero counts when no samples completed), so
// consumers can rely on the shape.
func (t *Tracer) StageSummaries() []StageSummary {
	if t == nil {
		return nil
	}
	out := make([]StageSummary, len(Stages))
	for i, name := range Stages {
		h := t.stage[i]
		out[i] = StageSummary{
			Stage:  name,
			Count:  h.Count(),
			MeanNS: h.Mean(),
			P50NS:  h.Quantile(0.50),
			P95NS:  h.Quantile(0.95),
			P99NS:  h.Quantile(0.99),
		}
	}
	return out
}

// PropagateBatch copies batch-level stamps into the traces of any sampled
// tuples just polled from the aggregation layer, cloning each trace record
// because the underlying batch (and its trace pointers) is shared across
// consumer groups. consumeNS is the spout's poll time — the mq→stream
// boundary. Free function so spouts need no tracer handle: untraced tuples
// cost one nil check each.
func PropagateBatch(tuples []tuple.Tuple, produceNS, consumeNS int64) {
	for i := range tuples {
		tr := tuples[i].Trace
		if tr == nil {
			continue
		}
		clone := *tr
		clone.ProduceNS = produceNS
		clone.ConsumeNS = consumeNS
		tuples[i].Trace = &clone
	}
}
