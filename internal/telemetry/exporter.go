package telemetry

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Dump is the on-disk/HTTP export format: one registry snapshot with its
// wall-clock capture time.
type Dump struct {
	TS      time.Time `json:"ts"`
	Metrics []Point   `json:"metrics"`
}

// snapshotDump captures the registry now.
func snapshotDump(r *Registry) Dump {
	points := r.Snapshot()
	if points == nil {
		points = []Point{}
	}
	return Dump{TS: time.Now(), Metrics: points}
}

// Handler returns an expvar-style HTTP handler serving the registry as a
// JSON Dump — mount it at /metrics to watch the pipeline live.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snapshotDump(r))
	})
}

// Exporter periodically writes registry snapshots to a JSON file, replacing
// it atomically (write-then-rename) so experiment harnesses can poll the
// path without ever reading a torn dump. A final snapshot is written on
// Stop, so short runs always leave a complete export behind.
type Exporter struct {
	reg      *Registry
	path     string
	interval time.Duration

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// DefaultExportInterval is the default dump period.
const DefaultExportInterval = time.Second

// NewFileExporter creates an exporter writing to path every interval
// (default 1s). Call Start to begin and Stop to flush the final snapshot.
func NewFileExporter(reg *Registry, path string, interval time.Duration) *Exporter {
	if interval <= 0 {
		interval = DefaultExportInterval
	}
	return &Exporter{
		reg:      reg,
		path:     path,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the export loop.
func (e *Exporter) Start() {
	go func() {
		defer close(e.done)
		ticker := time.NewTicker(e.interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				_ = e.Export()
			case <-e.stop:
				_ = e.Export()
				return
			}
		}
	}()
}

// Stop halts the loop after one final export and waits for it to land.
func (e *Exporter) Stop() {
	e.stopOnce.Do(func() { close(e.stop) })
	<-e.done
}

// Export writes one snapshot now. Safe to call without Start for one-shot
// dumps at the end of an experiment.
func (e *Exporter) Export() error {
	data, err := json.MarshalIndent(snapshotDump(e.reg), "", "  ")
	if err != nil {
		return err
	}
	tmp := e.path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Clean(e.path))
}
