package telemetry

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramEmptyQuantile(t *testing.T) {
	var h Histogram
	if q := h.Quantile(0.95); q != 0 {
		t.Errorf("empty histogram Quantile = %v, want 0", q)
	}
	var s HistSnapshot
	if q := s.Quantile(0.5); q != 0 {
		t.Errorf("empty snapshot Quantile = %v, want 0", q)
	}
}

func TestHistogramQuantileInflatedCount(t *testing.T) {
	// A hand-built snapshot whose Count exceeds the bucket sum must answer
	// with the top populated bucket's bound, not fall through to 2^63.
	var s HistSnapshot
	s.Buckets[4] = 10 // values in [16, 32)
	s.Count = 100
	if q := s.Quantile(0.99); q > 32 {
		t.Errorf("inflated-count Quantile = %v, want <= 32", q)
	}
}

func TestHistSnapshotSub(t *testing.T) {
	var h Histogram
	h.Observe(100)
	h.Observe(100)
	before := h.Snapshot()
	h.Observe(10000)
	h.Observe(12000)
	delta := h.Snapshot().Sub(before)
	if delta.Count != 2 {
		t.Fatalf("delta count = %d, want 2", delta.Count)
	}
	if m := delta.Mean(); math.Abs(m-11000) > 1 {
		t.Errorf("delta mean = %v, want 11000", m)
	}
	// The window's p95 reflects only the new observations, far from the
	// lifetime distribution that still remembers the two 100s.
	if q := delta.Quantile(0.95); q < 8192 {
		t.Errorf("delta p95 = %v, want within the new observations' bucket range", q)
	}
	// Reversed operands (prev taken after s) clamp instead of wrapping.
	rev := before.Sub(h.Snapshot())
	if rev.Count != 0 || rev.Sum != 0 {
		t.Errorf("reversed Sub = %+v, want zero", rev)
	}
}

func TestHistSnapshotConsistentUnderConcurrentObserve(t *testing.T) {
	var h Histogram
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50000; i++ {
			h.Observe(int64(i % 4096))
		}
	}()
	for i := 0; i < 200; i++ {
		s := h.Snapshot()
		var sum uint64
		for _, b := range s.Buckets {
			sum += b
		}
		if sum != s.Count {
			t.Fatalf("snapshot count %d != bucket sum %d", s.Count, sum)
		}
	}
	<-done
}

func TestBucketBounds(t *testing.T) {
	if n := NumBuckets(); n != 64 {
		t.Fatalf("NumBuckets = %d", n)
	}
	lo, hi := BucketBounds(0)
	if lo != 0 || hi != 2 {
		t.Errorf("bucket 0 = [%v, %v), want [0, 2)", lo, hi)
	}
	for i := 1; i < NumBuckets(); i++ {
		lo, hi := BucketBounds(i)
		if lo != math.Exp2(float64(i)) || hi != 2*lo {
			t.Errorf("bucket %d = [%v, %v)", i, lo, hi)
		}
	}
}

func TestSamplePeriod(t *testing.T) {
	cases := []struct{ flag, def, want int }{
		{0, 64, 64},  // 0 = subsystem default
		{1, 64, 1},   // 1 = every event
		{10, 64, 10}, // N = 1-in-N
		{-1, 64, 0},  // negative = off
		{-99, 64, 0},
	}
	for _, c := range cases {
		if got := SamplePeriod(c.flag, c.def); got != c.want {
			t.Errorf("SamplePeriod(%d, %d) = %d, want %d", c.flag, c.def, got, c.want)
		}
	}
}

// TestSnapshotRacesRegistryMutation exercises Snapshot against concurrent
// DropLabeled, GaugeFunc re-registration and histogram Observes; run under
// -race this is the regression guard for the registry's lock discipline and
// the gauge-func atomic.
func TestSnapshotRacesRegistryMutation(t *testing.T) {
	reg := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // churn labeled series in and out
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := string(rune('a' + i%8))
			reg.Counter("churn", L("session", id)).Inc()
			reg.Histogram("churn_lat", L("session", id)).Observe(int64(i))
			if i%3 == 0 {
				reg.DropLabeled("session", id)
			}
		}
	}()
	wg.Add(1)
	go func() { // re-register gauge funcs over one name
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			v := float64(i)
			reg.GaugeFunc("fn", func() float64 { return v })
		}
	}()
	wg.Add(1)
	go func() { // hammer one histogram the snapshots keep reading
		defer wg.Done()
		h := reg.Histogram("hot")
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			h.Observe(int64(i % 1000))
		}
	}()

	for i := 0; i < 500; i++ {
		for _, p := range reg.Snapshot() {
			if p.Kind == KindHistogram && p.Hist == nil {
				t.Fatal("histogram point without snapshot")
			}
		}
	}
	close(stop)
	wg.Wait()
}
