package fault

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"netalytics/internal/telemetry"
	"netalytics/internal/topology"
)

// Injector holds the set of currently active fault windows and answers the
// datapath hooks from a lock-free snapshot. It structurally satisfies both
// vnet.FaultHook (FrameFault) and mq.FaultHook (ProduceUnavailable /
// ConsumeUnavailable), so the layers never import this package.
//
// Apply/Clear rebuild the derived snapshot under a mutex (control plane,
// rare); the hooks read it through an atomic pointer and draw probabilities
// from a splitmix64 stream seeded from the spec seed (data plane, hot).
type Injector struct {
	mu      sync.Mutex
	applied []Event // active windows, in Apply order

	active  atomic.Pointer[activeState]
	rng     atomic.Uint64 // splitmix64 state for per-operation draws
	pods    atomic.Int64  // pod count for Partition targeting (0 = none)
	mqParts atomic.Int64  // mq partition count for MQDown targeting (0 = all)

	crashFn atomic.Pointer[func(pick uint64) bool]
	onEvent atomic.Pointer[func(ev Event, cleared bool)]

	// Event-level counters: one fault_injected series per kind.
	injected map[Kind]*telemetry.Counter
	// Effect-level counters: what the active faults actually did, for the
	// chaos ledger's attributed-drop accounting.
	frameDrops    *telemetry.Counter
	frameDelays   *telemetry.Counter
	produceFaults *telemetry.Counter
	consumeFaults *telemetry.Counter
}

// activeState is the immutable snapshot the hooks read: the union of every
// active window, with overlapping windows of the same kind combined (max
// rate, max latency, union of partitioned pods / downed partitions).
type activeState struct {
	lossRate    float64
	latency     time.Duration
	partPods    map[int]bool
	mqDownAll   bool
	mqDownParts map[int]bool
	produceErr  float64
	consumeErr  float64
}

// NewInjector creates an injector whose probability draws are seeded from
// seed. reg may be nil; the counters degrade to local atomics either way
// (telemetry.Registry accessors are nil-safe).
func NewInjector(seed int64, reg *telemetry.Registry) *Injector {
	in := &Injector{injected: make(map[Kind]*telemetry.Counter, len(AllKinds()))}
	in.rng.Store(uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d)
	for _, k := range AllKinds() {
		in.injected[k] = reg.Counter("fault_injected", telemetry.L("kind", k.String()))
	}
	in.frameDrops = reg.Counter("fault_frame_drops")
	in.frameDelays = reg.Counter("fault_frame_delays")
	in.produceFaults = reg.Counter("fault_produce_errors")
	in.consumeFaults = reg.Counter("fault_consume_errors")
	return in
}

// SetPods tells the injector how many pods the topology has, so Partition
// events can target pod Pick%n. Zero disables partition targeting.
func (in *Injector) SetPods(n int) { in.pods.Store(int64(n)) }

// SetMQPartitions tells the injector how many partitions each mq topic has,
// so MQDown events can target partition Pick%n. Zero (the default) makes
// MQDown take every partition down — a whole-broker outage.
func (in *Injector) SetMQPartitions(n int) { in.mqParts.Store(int64(n)) }

// SetMonitorCrashFn installs the callback MonitorCrash events invoke —
// typically nfv.Orchestrator.CrashOne.
func (in *Injector) SetMonitorCrashFn(fn func(pick uint64) bool) {
	if fn == nil {
		in.crashFn.Store(nil)
		return
	}
	in.crashFn.Store(&fn)
}

// SetOnEvent installs an observer called after every Apply (cleared=false)
// and Clear (cleared=true) — the CLI uses it to narrate the schedule.
func (in *Injector) SetOnEvent(fn func(ev Event, cleared bool)) {
	if fn == nil {
		in.onEvent.Store(nil)
		return
	}
	in.onEvent.Store(&fn)
}

// Apply activates one fault window (or fires an instantaneous crash).
func (in *Injector) Apply(ev Event) {
	if c := in.injected[ev.Kind]; c != nil {
		c.Add(1)
	}
	if ev.Kind == MonitorCrash {
		if fn := in.crashFn.Load(); fn != nil {
			(*fn)(ev.Pick)
		}
		in.notify(ev, false)
		return
	}
	in.mu.Lock()
	in.applied = append(in.applied, ev)
	in.rebuild()
	in.mu.Unlock()
	in.notify(ev, false)
}

// Clear deactivates the first active window equal to ev. Clearing an event
// that is not active is a no-op.
func (in *Injector) Clear(ev Event) {
	if ev.Kind == MonitorCrash {
		return
	}
	in.mu.Lock()
	for i, have := range in.applied {
		if have == ev {
			in.applied = append(in.applied[:i], in.applied[i+1:]...)
			break
		}
	}
	in.rebuild()
	in.mu.Unlock()
	in.notify(ev, true)
}

// ClearAll deactivates every active window.
func (in *Injector) ClearAll() {
	in.mu.Lock()
	in.applied = in.applied[:0]
	in.rebuild()
	in.mu.Unlock()
}

// ActiveCount reports how many fault windows are currently applied.
func (in *Injector) ActiveCount() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.applied)
}

// rebuild recomputes the hook snapshot from the applied set. Caller holds mu.
func (in *Injector) rebuild() {
	if len(in.applied) == 0 {
		in.active.Store(nil)
		return
	}
	st := &activeState{}
	for _, ev := range in.applied {
		switch ev.Kind {
		case LinkLoss:
			if ev.Param > st.lossRate {
				st.lossRate = ev.Param
			}
		case LinkLatency:
			if d := time.Duration(ev.Param); d > st.latency {
				st.latency = d
			}
		case Partition:
			if pods := in.pods.Load(); pods > 0 {
				if st.partPods == nil {
					st.partPods = make(map[int]bool, 2)
				}
				st.partPods[int(ev.Pick%uint64(pods))] = true
			}
		case MQDown:
			if parts := in.mqParts.Load(); parts > 0 {
				if st.mqDownParts == nil {
					st.mqDownParts = make(map[int]bool, 2)
				}
				st.mqDownParts[int(ev.Pick%uint64(parts))] = true
			} else {
				st.mqDownAll = true
			}
		case MQProduceErr:
			if ev.Param > st.produceErr {
				st.produceErr = ev.Param
			}
		case MQConsumeErr:
			if ev.Param > st.consumeErr {
				st.consumeErr = ev.Param
			}
		}
	}
	in.active.Store(st)
}

func (in *Injector) notify(ev Event, cleared bool) {
	if fn := in.onEvent.Load(); fn != nil {
		(*fn)(ev, cleared)
	}
}

// draw returns the next value in [0,1) from the injector's own splitmix64
// stream — lock-free, and independent of the global PRNG.
func (in *Injector) draw() float64 {
	x := in.rng.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// FrameFault implements the vnet fault hook: called once per forwarded frame
// with the resolved source and destination hosts. It reports whether the
// frame should be dropped and how much extra latency to add.
func (in *Injector) FrameFault(src, dst *topology.Host) (drop bool, delay time.Duration) {
	st := in.active.Load()
	if st == nil {
		return false, 0
	}
	if st.partPods != nil && src != nil && dst != nil && src.Pod != dst.Pod &&
		(st.partPods[src.Pod] || st.partPods[dst.Pod]) {
		in.frameDrops.Add(1)
		return true, 0
	}
	if st.lossRate > 0 && in.draw() < st.lossRate {
		in.frameDrops.Add(1)
		return true, 0
	}
	if st.latency > 0 {
		in.frameDelays.Add(1)
	}
	return false, st.latency
}

// ProduceUnavailable implements the mq fault hook for the produce path.
func (in *Injector) ProduceUnavailable(topic string, partition int) bool {
	st := in.active.Load()
	if st == nil {
		return false
	}
	if st.mqDownAll || (st.mqDownParts != nil && st.mqDownParts[partition]) {
		in.produceFaults.Add(1)
		return true
	}
	if st.produceErr > 0 && in.draw() < st.produceErr {
		in.produceFaults.Add(1)
		return true
	}
	return false
}

// ConsumeUnavailable implements the mq fault hook for the consume path.
func (in *Injector) ConsumeUnavailable(topic string, partition int) bool {
	st := in.active.Load()
	if st == nil {
		return false
	}
	if st.mqDownAll || (st.mqDownParts != nil && st.mqDownParts[partition]) {
		in.consumeFaults.Add(1)
		return true
	}
	if st.consumeErr > 0 && in.draw() < st.consumeErr {
		in.consumeFaults.Add(1)
		return true
	}
	return false
}

// Counts is a snapshot of the injector's counters, keyed for the chaos
// ledger: how many events fired per kind, and what their effects were.
type Counts struct {
	Injected      map[string]uint64 `json:"injected"`
	FrameDrops    uint64            `json:"frame_drops"`
	FrameDelays   uint64            `json:"frame_delays"`
	ProduceFaults uint64            `json:"produce_faults"`
	ConsumeFaults uint64            `json:"consume_faults"`
}

// Counts snapshots the event and effect counters.
func (in *Injector) Counts() Counts {
	c := Counts{
		Injected:      make(map[string]uint64, len(in.injected)),
		FrameDrops:    in.frameDrops.Value(),
		FrameDelays:   in.frameDelays.Value(),
		ProduceFaults: in.produceFaults.Value(),
		ConsumeFaults: in.consumeFaults.Value(),
	}
	for k, ctr := range in.injected {
		if v := ctr.Value(); v > 0 {
			c.Injected[k.String()] = v
		}
	}
	return c
}

// Run plays a schedule against the injector: each event is applied at its At
// offset and cleared Duration later, in deadline order on the given clock.
// Run returns when the last action has fired or stop closes; on stop (and on
// normal completion) every window the run applied has been cleared, so the
// pipeline is left fault-free.
func (in *Injector) Run(clock Clock, schedule []Event, stop <-chan struct{}) {
	type action struct {
		at    time.Duration
		ev    Event
		clear bool
	}
	acts := make([]action, 0, 2*len(schedule))
	for _, ev := range schedule {
		acts = append(acts, action{at: ev.At, ev: ev})
		if ev.Kind != MonitorCrash && ev.Duration > 0 {
			acts = append(acts, action{at: ev.At + ev.Duration, ev: ev, clear: true})
		}
	}
	sort.SliceStable(acts, func(i, j int) bool { return acts[i].at < acts[j].at })

	start := clock.Now()
	for _, a := range acts {
		if wait := a.at - clock.Now().Sub(start); wait > 0 {
			select {
			case <-clock.After(wait):
			case <-stop:
				in.ClearAll()
				return
			}
		}
		if a.clear {
			in.Clear(a.ev)
		} else {
			in.Apply(a.ev)
		}
	}
}
