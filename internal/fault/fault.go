// Package fault is the deterministic fault-injection layer for the NetAlytics
// testbed. A seeded Spec expands into a fixed schedule of fault windows —
// vnet link loss, added latency, pod partitions, mq partition unavailability,
// produce/consume errors, NFV monitor crashes — and an Injector applies and
// clears those windows against the live pipeline through narrow hooks the
// datapath layers expose (vnet.FaultHook, mq.FaultHook, the orchestrator's
// crash entry point).
//
// Determinism contract: the schedule is a pure function of Spec (identical
// seed ⇒ identical event list, regardless of runtime timing), and every
// per-frame / per-batch probability draw comes from the Injector's own
// splitmix64 stream, never from the global PRNG. Wall-clock interleaving of
// *effects* still varies run to run — what is reproducible is the fault plan
// and the invariants the chaos harness asserts under it, not the exact frame
// counts.
//
// The package sits below every datapath layer: it imports only topology,
// telemetry and the standard library, so vnet, mq, nfv and core can all
// depend on it (or, for vnet/mq, merely be structurally satisfied by it)
// without cycles.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the fault classes the injector knows how to apply.
type Kind uint8

const (
	// LinkLoss drops a Bernoulli fraction of frames on the virtual network.
	LinkLoss Kind = iota
	// LinkLatency adds a fixed per-frame delay on the virtual network.
	LinkLatency
	// Partition drops every frame crossing into or out of one pod.
	Partition
	// MQDown makes mq partitions reject produce and consume: one partition
	// ordinal when the injector knows the partition count, all otherwise.
	MQDown
	// MQProduceErr fails a Bernoulli fraction of produce attempts.
	MQProduceErr
	// MQConsumeErr fails a Bernoulli fraction of consume polls.
	MQConsumeErr
	// MonitorCrash kills one live NFV monitor instance (instantaneous: the
	// fault has no window to clear; recovery is the orchestrator's failover).
	MonitorCrash
)

var kindNames = map[Kind]string{
	LinkLoss:     "loss",
	LinkLatency:  "latency",
	Partition:    "partition",
	MQDown:       "mqdown",
	MQProduceErr: "produce-err",
	MQConsumeErr: "consume-err",
	MonitorCrash: "crash",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// AllKinds is every fault class, in declaration order.
func AllKinds() []Kind {
	return []Kind{LinkLoss, LinkLatency, Partition, MQDown, MQProduceErr, MQConsumeErr, MonitorCrash}
}

// Event is one scheduled fault window. At and Duration are offsets from the
// start of the run; Param carries the kind-specific magnitude (loss or error
// probability, or latency in nanoseconds); Pick deterministically selects the
// victim for targeted kinds (partitioned pod, downed mq partition, crashed
// monitor) via modulo over the live population.
type Event struct {
	At       time.Duration
	Duration time.Duration
	Kind     Kind
	Param    float64
	Pick     uint64
}

func (e Event) String() string {
	switch e.Kind {
	case LinkLoss, MQProduceErr, MQConsumeErr:
		return fmt.Sprintf("%s p=%.2f at=%s for=%s", e.Kind, e.Param, e.At, e.Duration)
	case LinkLatency:
		return fmt.Sprintf("%s +%s at=%s for=%s", e.Kind, time.Duration(e.Param), e.At, e.Duration)
	case MonitorCrash:
		return fmt.Sprintf("%s pick=%d at=%s", e.Kind, e.Pick, e.At)
	default:
		return fmt.Sprintf("%s pick=%d at=%s for=%s", e.Kind, e.Pick, e.At, e.Duration)
	}
}

// Spec describes a randomized-but-seeded fault schedule. Schedule() is a pure
// function of the Spec value: every draw comes from rand.NewSource(Seed) in a
// fixed order, so the same Spec always yields the same []Event.
type Spec struct {
	Seed    int64
	Horizon time.Duration // window over which event start times are drawn
	Events  int           // number of fault events
	Kinds   []Kind        // kinds to draw from (default: AllKinds)

	LossRate float64       // LinkLoss drop probability (default 0.15)
	Latency  time.Duration // LinkLatency per-frame delay (default 200µs)
	ErrRate  float64       // MQProduceErr/MQConsumeErr probability (default 0.25)

	MinFaultDuration time.Duration // shortest window (default Horizon/20)
	MaxFaultDuration time.Duration // longest window (default Horizon/5)
}

func (sp Spec) withDefaults() Spec {
	if sp.Horizon <= 0 {
		sp.Horizon = 2 * time.Second
	}
	if sp.Events <= 0 {
		sp.Events = 6
	}
	if len(sp.Kinds) == 0 {
		sp.Kinds = AllKinds()
	}
	if sp.LossRate <= 0 {
		sp.LossRate = 0.15
	}
	if sp.Latency <= 0 {
		sp.Latency = 200 * time.Microsecond
	}
	if sp.ErrRate <= 0 {
		sp.ErrRate = 0.25
	}
	if sp.MinFaultDuration <= 0 {
		sp.MinFaultDuration = sp.Horizon / 20
	}
	if sp.MaxFaultDuration <= 0 {
		sp.MaxFaultDuration = sp.Horizon / 5
	}
	if sp.MaxFaultDuration < sp.MinFaultDuration {
		sp.MaxFaultDuration = sp.MinFaultDuration
	}
	return sp
}

// Schedule expands the spec into its deterministic event list, sorted by
// start time. All randomness is drawn from rand.NewSource(Seed) in a fixed
// per-event order before the sort, so identical seeds produce identical
// schedules byte for byte.
func (sp Spec) Schedule() []Event {
	sp = sp.withDefaults()
	rng := rand.New(rand.NewSource(sp.Seed))
	evs := make([]Event, 0, sp.Events)
	for i := 0; i < sp.Events; i++ {
		k := sp.Kinds[rng.Intn(len(sp.Kinds))]
		at := time.Duration(rng.Int63n(int64(sp.Horizon)))
		dur := sp.MinFaultDuration
		if span := int64(sp.MaxFaultDuration - sp.MinFaultDuration); span > 0 {
			dur += time.Duration(rng.Int63n(span + 1))
		}
		ev := Event{At: at, Duration: dur, Kind: k, Pick: rng.Uint64()}
		switch k {
		case LinkLoss:
			ev.Param = sp.LossRate
		case LinkLatency:
			ev.Param = float64(sp.Latency)
		case MQProduceErr, MQConsumeErr:
			ev.Param = sp.ErrRate
		case MonitorCrash:
			ev.Duration = 0
		}
		evs = append(evs, ev)
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return evs
}

// ParseSpec parses the -fault-spec grammar: comma-separated key=value pairs.
//
//	seed=42,horizon=4s,events=8,kinds=loss+latency+crash,lossrate=0.3,
//	latency=2ms,errrate=0.5,mindur=50ms,maxdur=500ms
//
// Unknown keys are an error; omitted keys take the Spec defaults. The kinds
// value is a +-separated list of Kind names (loss, latency, partition,
// mqdown, produce-err, consume-err, crash).
func ParseSpec(s string) (Spec, error) {
	var sp Spec
	if strings.TrimSpace(s) == "" {
		return sp.withDefaults(), nil
	}
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return sp, fmt.Errorf("fault: bad spec field %q (want key=value)", field)
		}
		var err error
		switch strings.ToLower(strings.TrimSpace(key)) {
		case "seed":
			sp.Seed, err = strconv.ParseInt(val, 10, 64)
		case "horizon":
			sp.Horizon, err = time.ParseDuration(val)
		case "events":
			sp.Events, err = strconv.Atoi(val)
		case "kinds":
			sp.Kinds, err = parseKinds(val)
		case "lossrate":
			sp.LossRate, err = strconv.ParseFloat(val, 64)
		case "latency":
			sp.Latency, err = time.ParseDuration(val)
		case "errrate":
			sp.ErrRate, err = strconv.ParseFloat(val, 64)
		case "mindur":
			sp.MinFaultDuration, err = time.ParseDuration(val)
		case "maxdur":
			sp.MaxFaultDuration, err = time.ParseDuration(val)
		default:
			return sp, fmt.Errorf("fault: unknown spec key %q", key)
		}
		if err != nil {
			return sp, fmt.Errorf("fault: bad value for %q: %v", key, err)
		}
	}
	return sp.withDefaults(), nil
}

func parseKinds(val string) ([]Kind, error) {
	var kinds []Kind
	for _, name := range strings.Split(val, "+") {
		name = strings.ToLower(strings.TrimSpace(name))
		found := false
		for k, kn := range kindNames {
			if kn == name || (name == "mqerr" && k == MQProduceErr) {
				kinds = append(kinds, k)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown fault kind %q", name)
		}
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	return kinds, nil
}
