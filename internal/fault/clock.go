package fault

import (
	"sync"
	"time"
)

// Clock abstracts time for the fault runner so unit tests can drive a fault
// schedule deterministically with ManualClock while the soak harness and the
// CLI use RealClock. Only the two methods the runner needs are modeled.
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

// RealClock is the wall clock.
type RealClock struct{}

func (RealClock) Now() time.Time                         { return time.Now() }
func (RealClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// ManualClock is a test clock that only moves when Advance is called. After
// channels fire synchronously inside Advance once their deadline is reached,
// so a test can step through a fault schedule event by event.
type ManualClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []manualWaiter
}

type manualWaiter struct {
	deadline time.Time
	ch       chan time.Time
}

// NewManualClock starts a manual clock at the given instant.
func NewManualClock(start time.Time) *ManualClock {
	return &ManualClock{now: start}
}

func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *ManualClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	deadline := c.now.Add(d)
	if d <= 0 {
		ch <- deadline
		return ch
	}
	c.waiters = append(c.waiters, manualWaiter{deadline: deadline, ch: ch})
	return ch
}

// Advance moves the clock forward and fires every waiter whose deadline has
// been reached, in deadline order.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	var due []manualWaiter
	rest := c.waiters[:0]
	for _, w := range c.waiters {
		if !w.deadline.After(c.now) {
			due = append(due, w)
		} else {
			rest = append(rest, w)
		}
	}
	c.waiters = rest
	now := c.now
	c.mu.Unlock()
	for i := range due {
		for j := i + 1; j < len(due); j++ {
			if due[j].deadline.Before(due[i].deadline) {
				due[i], due[j] = due[j], due[i]
			}
		}
	}
	for _, w := range due {
		w.ch <- now
	}
}
