package fault

// Unit tests for the fault layer itself: schedule determinism (the seed
// contract the chaos harness rests on), spec parsing, the injector's active-
// window state machine, and the runner driven by a manual clock. All tests
// are Chaos-named so the dedicated CI chaos job (-run Chaos) picks them up.

import (
	"reflect"
	"testing"
	"time"

	"netalytics/internal/telemetry"
	"netalytics/internal/topology"
)

func TestChaosScheduleDeterministic(t *testing.T) {
	spec := Spec{Seed: 42, Horizon: 3 * time.Second, Events: 12}
	a := spec.Schedule()
	b := spec.Schedule()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical seed produced different schedules")
	}
	if len(a) != 12 {
		t.Fatalf("schedule has %d events, want 12", len(a))
	}
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("schedule not sorted: event %d at %s after %s", i, a[i].At, a[i-1].At)
		}
	}
	for _, ev := range a {
		if ev.At < 0 || ev.At >= spec.Horizon {
			t.Errorf("event start %s outside horizon", ev.At)
		}
		if ev.Kind == MonitorCrash && ev.Duration != 0 {
			t.Errorf("crash event has a duration: %s", ev)
		}
	}
	diff := (Spec{Seed: 43, Horizon: 3 * time.Second, Events: 12}).Schedule()
	if reflect.DeepEqual(a, diff) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestChaosParseSpec(t *testing.T) {
	sp, err := ParseSpec("seed=7,horizon=4s,events=9,kinds=loss+crash+mqdown,lossrate=0.3,latency=2ms,errrate=0.5,maxdur=500ms")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Seed != 7 || sp.Horizon != 4*time.Second || sp.Events != 9 {
		t.Fatalf("parsed spec = %+v", sp)
	}
	if want := []Kind{LinkLoss, MQDown, MonitorCrash}; !reflect.DeepEqual(sp.Kinds, want) {
		t.Fatalf("kinds = %v, want %v", sp.Kinds, want)
	}
	if sp.LossRate != 0.3 || sp.Latency != 2*time.Millisecond || sp.ErrRate != 0.5 {
		t.Fatalf("rates = %+v", sp)
	}
	if sp.MaxFaultDuration != 500*time.Millisecond {
		t.Fatalf("maxdur = %s", sp.MaxFaultDuration)
	}
	// Defaults fill the rest.
	if sp.MinFaultDuration <= 0 {
		t.Fatal("mindur default not applied")
	}

	for _, bad := range []string{"nope", "seed=x", "kinds=warp", "zorp=1"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestChaosInjectorWindows(t *testing.T) {
	reg := telemetry.NewRegistry()
	in := NewInjector(1, reg)
	topo := topology.MustNew(4)
	hosts := topo.Hosts()
	crossPod := func() (src, dst *topology.Host) { return hosts[0], hosts[len(hosts)-1] }

	// No active faults: clean pass-through.
	src, dst := crossPod()
	if drop, delay := in.FrameFault(src, dst); drop || delay != 0 {
		t.Fatal("fault effects with no active windows")
	}

	// Total loss drops every frame; clearing restores the path.
	loss := Event{Kind: LinkLoss, Param: 1.0, Duration: time.Second}
	in.Apply(loss)
	if drop, _ := in.FrameFault(src, dst); !drop {
		t.Fatal("lossrate=1 did not drop")
	}
	in.Clear(loss)
	if drop, _ := in.FrameFault(src, dst); drop {
		t.Fatal("cleared loss still dropping")
	}

	// Latency windows delay without dropping.
	lat := Event{Kind: LinkLatency, Param: float64(3 * time.Millisecond), Duration: time.Second}
	in.Apply(lat)
	if drop, delay := in.FrameFault(src, dst); drop || delay != 3*time.Millisecond {
		t.Fatalf("latency window: drop=%v delay=%s", drop, delay)
	}
	in.Clear(lat)

	// Partition: cross-pod traffic into the targeted pod dies, intra-pod
	// traffic survives.
	in.SetPods(4)
	part := Event{Kind: Partition, Pick: uint64(src.Pod), Duration: time.Second}
	in.Apply(part)
	if drop, _ := in.FrameFault(src, dst); !drop {
		t.Fatal("partition did not cut cross-pod traffic")
	}
	samePod := hosts[1]
	if samePod.Pod != src.Pod {
		t.Fatalf("test topology assumption broken: hosts[1] in pod %d", samePod.Pod)
	}
	if drop, _ := in.FrameFault(src, samePod); drop {
		t.Fatal("partition cut intra-pod traffic")
	}
	in.Clear(part)

	// MQ down with no partition hint: every partition unavailable, both ways.
	down := Event{Kind: MQDown, Duration: time.Second}
	in.Apply(down)
	if !in.ProduceUnavailable("t", 0) || !in.ConsumeUnavailable("t", 1) {
		t.Fatal("mqdown did not make partitions unavailable")
	}
	in.Clear(down)
	if in.ProduceUnavailable("t", 0) {
		t.Fatal("cleared mqdown still unavailable")
	}

	// With a partition hint, only Pick%parts goes down.
	in.SetMQPartitions(2)
	in.Apply(Event{Kind: MQDown, Pick: 1, Duration: time.Second})
	if in.ProduceUnavailable("t", 0) {
		t.Fatal("mqdown took down an untargeted partition")
	}
	if !in.ProduceUnavailable("t", 1) {
		t.Fatal("mqdown missed the targeted partition")
	}
	in.ClearAll()
	if in.ActiveCount() != 0 {
		t.Fatal("ClearAll left active windows")
	}

	c := in.Counts()
	if c.FrameDrops == 0 || c.ProduceFaults == 0 {
		t.Fatalf("effect counters did not move: %+v", c)
	}
	if c.Injected[LinkLoss.String()] != 1 || c.Injected[MQDown.String()] != 2 {
		t.Fatalf("injected counters = %v", c.Injected)
	}
}

func TestChaosRunnerManualClock(t *testing.T) {
	in := NewInjector(3, nil)
	schedule := []Event{
		{At: 10 * time.Millisecond, Duration: 30 * time.Millisecond, Kind: LinkLoss, Param: 1.0},
		{At: 20 * time.Millisecond, Kind: MonitorCrash, Pick: 5},
	}
	var crashed []uint64
	in.SetMonitorCrashFn(func(pick uint64) bool { crashed = append(crashed, pick); return true })

	var events []string
	applied := make(chan struct{}, 8)
	in.SetOnEvent(func(ev Event, cleared bool) {
		if cleared {
			events = append(events, "clear:"+ev.Kind.String())
		} else {
			events = append(events, "apply:"+ev.Kind.String())
		}
		applied <- struct{}{}
	})

	clock := NewManualClock(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		defer close(done)
		in.Run(clock, schedule, nil)
	}()

	step := func(d time.Duration, wantEvents int) {
		t.Helper()
		// Nudge the clock until the runner has parked on its next After; the
		// manual clock fires waiters synchronously inside Advance.
		deadline := time.Now().Add(2 * time.Second)
		fired := 0
		for fired < wantEvents {
			clock.Advance(d)
			select {
			case <-applied:
				fired++
			case <-time.After(time.Millisecond):
				if time.Now().After(deadline) {
					t.Fatalf("runner did not fire %d events (got %d); log=%v", wantEvents, fired, events)
				}
			}
		}
	}

	step(10*time.Millisecond, 1) // loss applies at t=10ms
	if in.ActiveCount() != 1 {
		t.Fatalf("active = %d after loss apply", in.ActiveCount())
	}
	step(10*time.Millisecond, 1) // crash fires at t=20ms
	if len(crashed) != 1 || crashed[0] != 5 {
		t.Fatalf("crashFn calls = %v", crashed)
	}
	step(20*time.Millisecond, 1) // loss clears at t=40ms
	<-done
	if in.ActiveCount() != 0 {
		t.Fatal("runner finished with active windows")
	}
	want := []string{"apply:loss", "apply:crash", "clear:loss"}
	if !reflect.DeepEqual(events, want) {
		t.Fatalf("event log = %v, want %v", events, want)
	}
}

func TestChaosRunnerStopClears(t *testing.T) {
	in := NewInjector(4, nil)
	schedule := []Event{
		{At: 0, Duration: time.Hour, Kind: LinkLoss, Param: 1.0},
		{At: time.Hour, Duration: time.Hour, Kind: MQDown},
	}
	clock := NewManualClock(time.Unix(0, 0))
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		in.Run(clock, schedule, stop)
	}()
	// Wait for the loss window to be live, then abort the run.
	deadline := time.Now().Add(2 * time.Second)
	for in.ActiveCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first event never applied")
		}
		clock.Advance(0)
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done
	if in.ActiveCount() != 0 {
		t.Fatal("stopped runner left active windows")
	}
}
