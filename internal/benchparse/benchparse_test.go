package benchparse

import (
	"bufio"
	"errors"
	"math"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: netalytics
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkAblationBurstSize/burst-1         	 1000000	      1256 ns/op	  50.97 MB/s
BenchmarkAblationBurstSize/burst-32        	 6189668	       358.7 ns/op	 178.42 MB/s
BenchmarkPlacementGreedy-8   	     100	  11000000 ns/op
PASS
ok  	netalytics	9.872s
`

func TestParse(t *testing.T) {
	report, err := Parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if got := report.Context["pkg"]; got != "netalytics" {
		t.Errorf("context pkg = %q", got)
	}
	if len(report.Results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(report.Results))
	}

	r := report.Results[1]
	if r.Name != "BenchmarkAblationBurstSize/burst-32" {
		t.Errorf("name = %q", r.Name)
	}
	if r.Iterations != 6189668 || r.NsPerOp != 358.7 || r.MBPerSec != 178.42 {
		t.Errorf("metrics = %+v", r)
	}
	if want := 1e9 / 358.7; math.Abs(r.PktsPerSec-want) > 1 {
		t.Errorf("pkts/sec = %f, want %f", r.PktsPerSec, want)
	}

	// Names are kept verbatim: a "-N" tail is ambiguous between a procs
	// suffix and a subtest name like burst-32, so no stripping.
	if got := report.Results[2].Name; got != "BenchmarkPlacementGreedy-8" {
		t.Errorf("suffixed name = %q", got)
	}
	if got := report.Results[0].Name; got != "BenchmarkAblationBurstSize/burst-1" {
		t.Errorf("burst-1 name = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(bufio.NewScanner(strings.NewReader("PASS\nok x 1s\n"))); !errors.Is(err, ErrNoBenchmarks) {
		t.Errorf("empty input error = %v", err)
	}
	if _, err := Parse(bufio.NewScanner(strings.NewReader("BenchmarkX 12 nonsense ns/op"))); err == nil {
		t.Error("malformed line accepted")
	}
	if _, err := Parse(bufio.NewScanner(strings.NewReader("BenchmarkX 12 34 widgets"))); err == nil {
		t.Error("line without ns/op accepted")
	}
}

func TestParseExtraMetrics(t *testing.T) {
	in := "BenchmarkPipelineLatency-8   10   1200000 ns/op   845000 e2e-p50-ns   2310000 e2e-p95-ns   4100000 e2e-p99-ns\n"
	report, err := Parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	r := report.Results[0]
	want := map[string]float64{
		"e2e-p50-ns": 845000,
		"e2e-p95-ns": 2310000,
		"e2e-p99-ns": 4100000,
	}
	if len(r.Extra) != len(want) {
		t.Fatalf("Extra = %v", r.Extra)
	}
	for unit, v := range want {
		if r.Extra[unit] != v {
			t.Errorf("Extra[%q] = %v, want %v", unit, r.Extra[unit], v)
		}
	}
	// Known units never leak into Extra.
	if _, ok := r.Extra["ns/op"]; ok {
		t.Error("ns/op landed in Extra")
	}
	if r.NsPerOp != 1200000 {
		t.Errorf("NsPerOp = %v", r.NsPerOp)
	}
}
