// Package benchparse turns the text output of `go test -bench` into a
// structured report. It exists so CI can publish monitor throughput numbers
// (pkts/sec) as JSON without external tooling.
package benchparse

import (
	"bufio"
	"errors"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	// Name is the benchmark name exactly as printed (including the
	// -<procs> suffix when GOMAXPROCS > 1): a "-N" tail is ambiguous
	// between a procs count and a subtest name like "burst-32", so it is
	// kept verbatim rather than guessed at.
	Name string `json:"name"`
	// Iterations is the b.N the timing was measured over.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the reported ns/op.
	NsPerOp float64 `json:"ns_per_op"`
	// PktsPerSec is 1e9/NsPerOp: monitor benchmarks deliver one frame per
	// op, so ns/op inverts directly to packet throughput.
	PktsPerSec float64 `json:"pkts_per_sec"`
	// MBPerSec is the MB/s column when the benchmark calls b.SetBytes
	// (0 otherwise).
	MBPerSec float64 `json:"mb_per_sec,omitempty"`
	// Extra holds every other "value unit" pair on the line, keyed by unit —
	// custom metrics published with b.ReportMetric, such as the pipeline
	// benchmark's e2e-p50-ns latency percentiles.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the full parse of one `go test -bench` run.
type Report struct {
	// Context carries the goos/goarch/pkg/cpu header lines, keyed by field.
	Context map[string]string `json:"context,omitempty"`
	Results []Result          `json:"results"`
}

// ErrNoBenchmarks is returned when the input contains no benchmark lines.
var ErrNoBenchmarks = errors.New("benchparse: no benchmark lines in input")

// Parse reads `go test -bench` output line by line. Unrecognized lines
// (PASS, ok, test logs) are skipped; malformed benchmark lines are an error.
func Parse(sc *bufio.Scanner) (*Report, error) {
	report := &Report{Context: make(map[string]string)}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"),
			strings.HasPrefix(line, "cpu:"):
			key, val, _ := strings.Cut(line, ":")
			report.Context[key] = strings.TrimSpace(val)
		case strings.HasPrefix(line, "Benchmark"):
			res, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			report.Results = append(report.Results, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(report.Results) == 0 {
		return nil, ErrNoBenchmarks
	}
	return report, nil
}

// parseLine parses one line of the form
//
//	BenchmarkName-8   1000000   1256 ns/op   50.97 MB/s
func parseLine(line string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, errors.New("benchparse: short benchmark line: " + line)
	}
	name := fields[0]
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, errors.New("benchparse: bad iteration count: " + line)
	}
	res := Result{Name: name, Iterations: iters}
	// Remaining fields come in "value unit" pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, errors.New("benchparse: bad metric value: " + line)
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = val
			if val > 0 {
				res.PktsPerSec = 1e9 / val
			}
		case "MB/s":
			res.MBPerSec = val
		default:
			if res.Extra == nil {
				res.Extra = make(map[string]float64)
			}
			res.Extra[fields[i+1]] = val
		}
	}
	if res.NsPerOp == 0 {
		return Result{}, errors.New("benchparse: no ns/op metric: " + line)
	}
	return res, nil
}
