package nfv

import (
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netalytics/internal/monitor"
	"netalytics/internal/packet"
	"netalytics/internal/sdn"
	"netalytics/internal/topology"
	"netalytics/internal/tuple"
	"netalytics/internal/vnet"
)

type memSink struct {
	mu     sync.Mutex
	tuples int
}

func (s *memSink) Deliver(b *tuple.Batch) error {
	s.mu.Lock()
	s.tuples += len(b.Tuples)
	s.mu.Unlock()
	return nil
}

func (s *memSink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tuples
}

type countParser struct{}

func (countParser) Name() string { return "count" }
func (countParser) Handle(p *monitor.Packet, emit monitor.EmitFunc) {
	emit(tuple.Tuple{FlowID: p.FlowID, Val: 1})
}

func testRig(t *testing.T) (*Orchestrator, *vnet.Network, *topology.FatTree) {
	t.Helper()
	topo := topology.MustNew(4)
	net := vnet.New(topo, sdn.NewController())
	return New(net), net, topo
}

func monitorConfig(sink monitor.Sink) monitor.Config {
	return monitor.Config{
		Parsers: []monitor.Factory{func() monitor.Parser { return countParser{} }},
		Sink:    sink,
	}
}

func frameTo(dst *topology.Host, src netip.Addr) []byte {
	var b packet.Builder
	return b.TCP(packet.TCPSpec{
		Src: src, Dst: dst.Addr, SrcPort: 999, DstPort: 80,
		Flags: packet.TCPFlagACK, Payload: []byte("x"),
	})
}

func TestLaunchPumpsAndStops(t *testing.T) {
	o, net, topo := testRig(t)
	hosts := topo.Hosts()
	monHost, target, src := hosts[1], hosts[0], hosts[4]
	net.Controller().InstallMirror("q1", target.Edge, sdn.Match{DstIP: target.Addr}, monHost.ID, 10)

	sink := &memSink{}
	in, err := o.Launch("q1", Spec{Host: monHost, Config: monitorConfig(sink)})
	if err != nil {
		t.Fatal(err)
	}
	if o.InstanceCount() != 1 || len(o.Instances("q1")) != 1 {
		t.Fatalf("instance bookkeeping wrong: %d", o.InstanceCount())
	}

	for i := 0; i < 10; i++ {
		if err := net.Inject(frameTo(target, src.Addr)); err != nil {
			t.Fatal(err)
		}
	}
	o.StopQuery("q1") // drains the pump and flushes the monitor
	if got := in.Packets(); got != 10 {
		t.Errorf("Packets = %d, want 10", got)
	}
	if got := sink.count(); got != 10 {
		t.Errorf("sink tuples = %d, want 10", got)
	}
	if o.InstanceCount() != 0 {
		t.Errorf("instances remain after StopQuery: %d", o.InstanceCount())
	}
	o.StopQuery("q1") // idempotent
}

func TestLaunchRejectsBadConfig(t *testing.T) {
	o, _, topo := testRig(t)
	if _, err := o.Launch("q", Spec{Host: topo.Hosts()[0], Config: monitor.Config{}}); err == nil {
		t.Error("bad monitor config accepted")
	}
}

func TestSharedCounterAndLimit(t *testing.T) {
	o, net, topo := testRig(t)
	hosts := topo.Hosts()
	targets := []*topology.Host{hosts[0], hosts[2]} // different racks
	monHosts := []*topology.Host{hosts[1], hosts[3]}
	src := hosts[4]

	var counter atomic.Uint64
	var fired atomic.Int32
	sink := &memSink{}
	for i, target := range targets {
		net.Controller().InstallMirror("q", target.Edge, sdn.Match{DstIP: target.Addr}, monHosts[i].ID, 10)
		_, err := o.Launch("q", Spec{
			Host:        monHosts[i],
			Config:      monitorConfig(sink),
			Counter:     &counter,
			PacketLimit: 6,
			OnLimit:     func() { fired.Add(1) },
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// 4 frames to each target: the shared counter hits 6 across instances.
	for i := 0; i < 4; i++ {
		for _, target := range targets {
			if err := net.Inject(frameTo(target, src.Addr)); err != nil {
				t.Fatal(err)
			}
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for counter.Load() < 8 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if counter.Load() != 8 {
		t.Fatalf("shared counter = %d, want 8", counter.Load())
	}
	if fired.Load() != 1 {
		t.Errorf("OnLimit fired %d times, want exactly 1", fired.Load())
	}
	o.Close()
	if o.InstanceCount() != 0 {
		t.Error("Close left instances")
	}
}

func TestQueriesIsolated(t *testing.T) {
	o, _, topo := testRig(t)
	hosts := topo.Hosts()
	sink := &memSink{}
	if _, err := o.Launch("a", Spec{Host: hosts[0], Config: monitorConfig(sink)}); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Launch("b", Spec{Host: hosts[1], Config: monitorConfig(sink)}); err != nil {
		t.Fatal(err)
	}
	o.StopQuery("a")
	if got := len(o.Instances("b")); got != 1 {
		t.Errorf("query b instances = %d after stopping a", got)
	}
	o.Close()
}

// TestCrashVsStopQueryRace hammers the teardown race: one goroutine crashes
// an instance while another stops its whole query. Instance teardown is
// once-guarded and roster removal is atomic, so whichever side wins, nothing
// panics, no instance survives and no tap leaks.
func TestCrashVsStopQueryRace(t *testing.T) {
	for round := 0; round < 50; round++ {
		o, net, topo := testRig(t)
		hosts := topo.Hosts()
		sink := &memSink{}
		ins := make([]*Instance, 2)
		for i := range ins {
			in, err := o.Launch("q", Spec{Host: hosts[i+1], Config: monitorConfig(sink)})
			if err != nil {
				t.Fatal(err)
			}
			ins[i] = in
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			o.Crash(ins[0])
		}()
		go func() {
			defer wg.Done()
			o.StopQuery("q")
		}()
		wg.Wait()
		if got := o.InstanceCount(); got != 0 {
			t.Fatalf("round %d: %d instances survived", round, got)
		}
		if got := net.TapCount(); got != 0 {
			t.Fatalf("round %d: %d taps leaked", round, got)
		}
	}
}

// TestCrashAccountsLostFrames closes the crash side of the chaos ledger at
// the unit level: frames still queued in a crashed instance's tap are
// drained into CrashLost, never into the delivered counters.
func TestCrashAccountsLostFrames(t *testing.T) {
	o, net, topo := testRig(t)
	hosts := topo.Hosts()
	monHost, target, src := hosts[1], hosts[0], hosts[4]
	net.Controller().InstallMirror("q1", target.Edge, sdn.Match{DstIP: target.Addr}, monHost.ID, 10)
	net.Endpoint(target)

	sink := &memSink{}
	in, err := o.Launch("q1", Spec{Host: monHost, Config: monitorConfig(sink)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := net.Inject(frameTo(target, src.Addr)); err != nil {
			t.Fatal(err)
		}
	}
	if !o.Crash(in) {
		t.Fatal("Crash returned false for a live instance")
	}
	if o.Crash(in) {
		t.Fatal("second Crash of the same instance reported success")
	}
	crashes, lost := o.CrashStats()
	if crashes != 1 {
		t.Fatalf("crashes = %d, want 1", crashes)
	}
	st := net.Stats()
	if in.Packets()+lost != st.Mirrored {
		t.Fatalf("crash ledger: delivered %d + lost %d != mirrored %d", in.Packets(), lost, st.Mirrored)
	}
	if in.CrashLost() != lost {
		t.Fatalf("instance lost %d, orchestrator booked %d", in.CrashLost(), lost)
	}
}
