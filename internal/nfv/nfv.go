// Package nfv is the NFV orchestrator of Fig. 1: it instantiates monitor
// network functions on chosen hosts exactly when a query needs them, wires
// each to a mirror tap on the virtual network, pumps mirrored frames into
// the monitor, and tears the instances down when the query ends — the
// paper's "deployed as virtual network functions ... started exactly when
// and where they are needed" (§3.1).
package nfv

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"netalytics/internal/monitor"
	"netalytics/internal/telemetry"
	"netalytics/internal/topology"
	"netalytics/internal/vnet"
)

// Instance is one deployed monitor network function.
type Instance struct {
	Host    *topology.Host
	Monitor *monitor.Monitor

	query   string // owning query, for crash dispatch
	tap     *vnet.Tap
	packets atomic.Uint64
	pumped  *telemetry.Counter // registry mirror of packets (nfv_pump_frames)
	counter *atomic.Uint64     // shared across a query's instances
	onLimit func()
	limit   uint64
	pumpWG  sync.WaitGroup

	// Crash support: dead makes the pump swallow frames without delivering
	// (the loss a dying NF takes with it, counted in crashLost); downOnce
	// makes teardown idempotent so Crash racing StopQuery is safe.
	dead      atomic.Bool
	crashLost atomic.Uint64
	downOnce  sync.Once
}

// Packets returns the number of mirrored frames pumped into the instance.
func (in *Instance) Packets() uint64 { return in.packets.Load() }

// Query returns the ID of the query that launched the instance.
func (in *Instance) Query() string { return in.query }

// CrashLost returns the frames the pump drained but discarded because the
// instance had crashed — mirrored traffic the dead monitor never parsed.
func (in *Instance) CrashLost() uint64 { return in.crashLost.Load() }

// TapDrops returns the mirrored frames dropped at the instance's tap because
// its queue was full — RX overruns the pump could not keep up with.
func (in *Instance) TapDrops() uint64 {
	if in.tap == nil {
		return 0
	}
	return in.tap.Drops()
}

// TapDepth returns the instance tap's current RX backlog.
func (in *Instance) TapDepth() int {
	if in.tap == nil {
		return 0
	}
	return in.tap.Depth()
}

const (
	// pumpBurst is how many mirrored frames one pump wakeup drains from the
	// tap, matching the monitor's default rx_burst size.
	pumpBurst = 32
	// burstTSSlack bounds the mirror-timestamp precision a burst delivery
	// may collapse: frames whose tap timestamps are farther apart than this
	// start a new sub-burst, so connection-timing parsers keep their
	// millisecond-scale fidelity even when the tap queue backs up.
	burstTSSlack = 200 * time.Microsecond
)

// pump moves mirrored frames from the tap into the monitor in bursts: each
// wakeup drains up to pumpBurst frames and hands them to DeliverBurst,
// split wherever tap timestamps drift beyond burstTSSlack.
func (in *Instance) pump() {
	defer in.pumpWG.Done()
	buf := make([]vnet.TapFrame, pumpBurst)
	frames := make([][]byte, 0, pumpBurst)
	for {
		n := in.tap.ReadBurst(buf)
		if n == 0 {
			return
		}
		if in.dead.Load() {
			// Crashed: keep draining so the tap can close, but the frames
			// never reach the monitor. They are attributed to crashLost and
			// deliberately kept out of the delivered-frame counters — the
			// chaos ledger accounts Mirrored = delivered + crashLost.
			in.crashLost.Add(uint64(n))
			continue
		}
		for start := 0; start < n; {
			ts := buf[start].TS
			end := start + 1
			for end < n && buf[end].TS.Sub(ts) <= burstTSSlack {
				end++
			}
			frames = frames[:0]
			for _, tf := range buf[start:end] {
				frames = append(frames, tf.Raw)
			}
			in.Monitor.DeliverBurst(frames, ts)
			start = end
		}
		in.packets.Add(uint64(n))
		in.pumped.Add(uint64(n))
		prev := in.counter.Add(uint64(n)) - uint64(n)
		if in.limit > 0 && prev < in.limit && prev+uint64(n) >= in.limit && in.onLimit != nil {
			in.onLimit()
		}
	}
}

// stop closes the tap, waits for the pump to drain, and stops the monitor
// (flushing its parsers and final batches). Idempotent: StopQuery tearing
// down a query and Crash killing one of its instances may both reach the same
// instance, and exactly one of them performs the teardown.
func (in *Instance) stop(net *vnet.Network) {
	in.downOnce.Do(func() {
		net.CloseTap(in.tap)
		in.pumpWG.Wait()
		in.Monitor.Stop()
	})
}

// Spec describes one monitor instance to launch.
type Spec struct {
	Host *topology.Host
	// Config is the monitor configuration (parsers, workers, sink, ...).
	Config monitor.Config
	// Counter, when non-nil, is shared by all of a query's instances so
	// PacketLimit applies to the query's total frame count. When nil the
	// instance counts alone.
	Counter *atomic.Uint64
	// PacketLimit, when non-zero, invokes OnLimit once the counter reaches
	// that many frames.
	PacketLimit uint64
	// OnLimit is called (at most once per instance observing the limit) on
	// the pump's goroutine; it must not block.
	OnLimit func()
	// TapBuffer overrides the tap queue depth (0 = default).
	TapBuffer int
	// Metrics, when non-nil, registers the instance's pump counter
	// (nfv_pump_frames) and tap backlog gauge (nfv_tap_depth) under
	// MetricLabels plus host=<name>.
	Metrics *telemetry.Registry
	// MetricLabels are attached to every instance metric (e.g. the session).
	MetricLabels []telemetry.Label
}

// Orchestrator launches and reclaims monitor instances per query.
type Orchestrator struct {
	net *vnet.Network

	mu        sync.Mutex
	instances map[string][]*Instance

	crashes   atomic.Uint64
	crashLost atomic.Uint64
	onCrash   atomic.Pointer[func(queryID string, in *Instance)]
}

// New creates an orchestrator over the network.
func New(net *vnet.Network) *Orchestrator {
	return &Orchestrator{net: net, instances: make(map[string][]*Instance)}
}

// Launch instantiates one monitor for the query and starts its data path.
func (o *Orchestrator) Launch(queryID string, spec Spec) (*Instance, error) {
	mon, err := monitor.New(spec.Config)
	if err != nil {
		return nil, fmt.Errorf("nfv: launching monitor on %s: %w", spec.Host.Name, err)
	}
	mon.Start()
	counter := spec.Counter
	if counter == nil {
		counter = &atomic.Uint64{}
	}
	labels := append([]telemetry.Label{telemetry.L("host", spec.Host.Name)}, spec.MetricLabels...)
	in := &Instance{
		Host:    spec.Host,
		Monitor: mon,
		query:   queryID,
		tap:     o.net.OpenTap(spec.Host.ID, spec.TapBuffer),
		pumped:  spec.Metrics.Counter("nfv_pump_frames", labels...),
		counter: counter,
		limit:   spec.PacketLimit,
		onLimit: spec.OnLimit,
	}
	if spec.Metrics != nil {
		tap := in.tap
		spec.Metrics.GaugeFunc("nfv_tap_depth", func() float64 { return float64(tap.Depth()) }, labels...)
	}
	in.pumpWG.Add(1)
	go in.pump()

	o.mu.Lock()
	o.instances[queryID] = append(o.instances[queryID], in)
	o.mu.Unlock()
	return in, nil
}

// Instances returns the live instances of a query.
func (o *Orchestrator) Instances(queryID string) []*Instance {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]*Instance(nil), o.instances[queryID]...)
}

// InstanceCount returns the number of live instances across all queries.
func (o *Orchestrator) InstanceCount() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	n := 0
	for _, list := range o.instances {
		n += len(list)
	}
	return n
}

// SetOnCrash installs the failover callback Crash invokes after tearing a
// crashed instance down. It runs synchronously on the crashing goroutine —
// the engine uses it to relaunch the monitor and re-install its mirror rules.
func (o *Orchestrator) SetOnCrash(fn func(queryID string, in *Instance)) {
	if fn == nil {
		o.onCrash.Store(nil)
		return
	}
	o.onCrash.Store(&fn)
}

// CrashStats reports how many instances were crashed and how many mirrored
// frames those crashes discarded before their taps closed.
func (o *Orchestrator) CrashStats() (crashes, lostFrames uint64) {
	return o.crashes.Load(), o.crashLost.Load()
}

// Crash kills one instance: it is removed from the query's live set, its pump
// discards everything still queued (counted as crash loss), its tap closes
// and its monitor flushes what it had already parsed. Returns false when the
// instance is no longer live — already crashed, or its query already stopped
// — in which case nothing happens; racing StopQuery is safe either way
// because instance teardown is once-guarded.
func (o *Orchestrator) Crash(in *Instance) bool {
	o.mu.Lock()
	list := o.instances[in.query]
	idx := -1
	for i, have := range list {
		if have == in {
			idx = i
			break
		}
	}
	if idx < 0 {
		o.mu.Unlock()
		return false
	}
	rest := make([]*Instance, 0, len(list)-1)
	rest = append(rest, list[:idx]...)
	rest = append(rest, list[idx+1:]...)
	if len(rest) == 0 {
		delete(o.instances, in.query)
	} else {
		o.instances[in.query] = rest
	}
	o.mu.Unlock()

	in.dead.Store(true)
	in.stop(o.net)
	o.crashes.Add(1)
	o.crashLost.Add(in.crashLost.Load())
	if cb := o.onCrash.Load(); cb != nil {
		(*cb)(in.query, in)
	}
	return true
}

// CrashOne crashes a deterministically chosen live instance: the victim is
// pick modulo the live population, ordered by query ID then launch order.
// Returns false when no instance is live. This is the entry point the fault
// injector's MonitorCrash events use.
func (o *Orchestrator) CrashOne(pick uint64) bool {
	o.mu.Lock()
	ids := make([]string, 0, len(o.instances))
	for id := range o.instances {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var flat []*Instance
	for _, id := range ids {
		flat = append(flat, o.instances[id]...)
	}
	o.mu.Unlock()
	if len(flat) == 0 {
		return false
	}
	return o.Crash(flat[pick%uint64(len(flat))])
}

// StopInstance reclaims one instance without counting it as a crash: it is
// removed from its query's live set, its tap closes, its pump drains every
// queued frame into the monitor, and the monitor flushes and stops. Returns
// false when the instance is no longer live. The shared-tap registry uses it
// to retire a host's shared monitor when its last subscriber detaches while
// the owning synthetic query keeps other hosts' monitors running.
func (o *Orchestrator) StopInstance(in *Instance) bool {
	o.mu.Lock()
	list := o.instances[in.query]
	idx := -1
	for i, have := range list {
		if have == in {
			idx = i
			break
		}
	}
	if idx < 0 {
		o.mu.Unlock()
		return false
	}
	rest := make([]*Instance, 0, len(list)-1)
	rest = append(rest, list[:idx]...)
	rest = append(rest, list[idx+1:]...)
	if len(rest) == 0 {
		delete(o.instances, in.query)
	} else {
		o.instances[in.query] = rest
	}
	o.mu.Unlock()
	in.stop(o.net)
	return true
}

// All returns every live instance across all queries, ordered by query ID
// then launch order.
func (o *Orchestrator) All() []*Instance {
	o.mu.Lock()
	defer o.mu.Unlock()
	ids := make([]string, 0, len(o.instances))
	for id := range o.instances {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var flat []*Instance
	for _, id := range ids {
		flat = append(flat, o.instances[id]...)
	}
	return flat
}

// StopQuery reclaims every instance of a query: taps close, pumps drain,
// monitors flush and stop. Idempotent.
func (o *Orchestrator) StopQuery(queryID string) {
	o.mu.Lock()
	list := o.instances[queryID]
	delete(o.instances, queryID)
	o.mu.Unlock()
	for _, in := range list {
		in.stop(o.net)
	}
}

// Close reclaims everything.
func (o *Orchestrator) Close() {
	o.mu.Lock()
	all := o.instances
	o.instances = make(map[string][]*Instance)
	o.mu.Unlock()
	for _, list := range all {
		for _, in := range list {
			in.stop(o.net)
		}
	}
}
