// Package netalytics is a reproduction of "NetAlytics: Cloud-Scale
// Application Performance Monitoring with SDN and NFV" (Liu, Trotter, Ren,
// Wood — ACM Middleware 2016): a non-intrusive distributed performance
// monitoring system for cloud data centers.
//
// A NetAlytics deployment answers SQL-like monitoring queries:
//
//	PARSE tcp_conn_time, http_get
//	FROM 10.0.2.8:5555 TO 10.0.2.9:80
//	LIMIT 90s SAMPLE auto
//	PROCESS (top-k: k=10, w=10s)
//
// The query compiles into SDN mirror rules that steer copies of the matching
// flows to dynamically placed NFV packet monitors; parser output tuples flow
// through a Kafka-style aggregation layer into a Storm-style streaming
// topology, and results come back on the session's channel — all without
// touching the monitored applications.
//
// This package is the public facade. A Testbed bundles a fat-tree topology,
// virtual network, SDN controller, aggregation cluster and query engine:
//
//	tb, _ := netalytics.NewTestbed(netalytics.TestbedConfig{FatTreeK: 4})
//	defer tb.Close()
//	// ... start emulated servers on tb.Network(), drive traffic ...
//	sess, _ := tb.Submit(`PARSE http_get FROM * TO h0-0-0:80 PROCESS (top-k: k=10)`)
//	for t := range sess.Results() { ... }
//
// The subsystems are available as internal packages; the facade re-exports
// the types needed to operate the system end to end.
package netalytics

import (
	"fmt"
	"math/rand"

	"netalytics/internal/core"
	"netalytics/internal/insight"
	"netalytics/internal/mq"
	"netalytics/internal/placement"
	"netalytics/internal/sdn"
	"netalytics/internal/stream"
	"netalytics/internal/telemetry"
	"netalytics/internal/topology"
	"netalytics/internal/tuple"
	"netalytics/internal/vnet"
)

// Re-exported core types: the facade's vocabulary.
type (
	// Session is a running query; see Engine.Submit.
	Session = core.Session
	// EngineConfig tunes the query engine.
	EngineConfig = core.Config
	// Tuple is a monitoring record flowing out of Session.Results.
	Tuple = tuple.Tuple
	// RankEntry is one entry of a top-k ranking.
	RankEntry = stream.RankEntry
	// Topology is the emulated data-center fat tree.
	Topology = topology.FatTree
	// Host is a server in the topology.
	Host = topology.Host
	// Network is the virtual network applications attach to.
	Network = vnet.Network
	// Controller is the SDN controller.
	Controller = sdn.Controller
	// PlacementPolicy selects monitor/analytics placement trade-offs.
	PlacementPolicy = placement.Policy
	// Telemetry is a session's pipeline health snapshot; see Session.Telemetry.
	Telemetry = core.Telemetry
	// MetricsRegistry is the telemetry registry every layer reports into.
	MetricsRegistry = telemetry.Registry
	// InsightConfig tunes the always-on insight tier (EngineConfig.Insight).
	InsightConfig = insight.Config
	// InsightTier is the running anomaly-detection tier; see Engine.Insight.
	InsightTier = insight.Tier
	// Incident is a rooted group of correlated anomalies.
	Incident = insight.Incident
	// Anomaly is one detector firing on one metric series.
	Anomaly = insight.Anomaly
)

// The paper's placement policies (§4.1, §6.2).
var (
	PolicyLocalRandom       = placement.LocalRandom
	PolicyNetalyticsNode    = placement.NetalyticsNode
	PolicyNetalyticsNetwork = placement.NetalyticsNetwork
)

// DecodeRankings extracts top-k entries from a result tuple produced by the
// top-k processor; ok is false for other tuples.
func DecodeRankings(t Tuple) ([]RankEntry, bool) { return stream.DecodeRankings(t) }

// TestbedConfig parameterizes NewTestbed.
type TestbedConfig struct {
	// FatTreeK is the fat-tree arity (even, >= 2; default 4 → 16 hosts).
	FatTreeK int
	// Engine tunes the query engine; zero values take defaults.
	Engine EngineConfig
	// ResourceSeed randomizes host capacities when non-zero.
	ResourceSeed int64
}

// Testbed is a self-contained NetAlytics deployment: topology, network,
// controller, aggregation cluster and engine, ready for queries.
type Testbed struct {
	engine *core.Engine
}

// NewTestbed builds a testbed.
func NewTestbed(cfg TestbedConfig) (*Testbed, error) {
	k := cfg.FatTreeK
	if k == 0 {
		k = 4
	}
	topo, err := topology.New(k)
	if err != nil {
		return nil, fmt.Errorf("netalytics: %w", err)
	}
	if cfg.ResourceSeed != 0 {
		topo.RandomizeResources(rand.New(rand.NewSource(cfg.ResourceSeed)))
	}
	return &Testbed{engine: core.NewEngine(topo, cfg.Engine)}, nil
}

// Topology returns the testbed's fat tree.
func (tb *Testbed) Topology() *Topology { return tb.engine.Topology() }

// Network returns the virtual network for attaching emulated applications.
func (tb *Testbed) Network() *Network { return tb.engine.Network() }

// Controller returns the SDN controller.
func (tb *Testbed) Controller() *Controller { return tb.engine.Controller() }

// Aggregation returns the aggregation (mq) cluster.
func (tb *Testbed) Aggregation() *mq.Cluster { return tb.engine.Aggregation() }

// Engine returns the underlying query engine.
func (tb *Testbed) Engine() *core.Engine { return tb.engine }

// Metrics returns the testbed's telemetry registry (never nil); serve it
// live with telemetry.Handler or dump it with a telemetry.Exporter.
func (tb *Testbed) Metrics() *MetricsRegistry { return tb.engine.Metrics() }

// Submit parses and launches a query.
func (tb *Testbed) Submit(query string) (*Session, error) { return tb.engine.Submit(query) }

// Close stops all sessions.
func (tb *Testbed) Close() { tb.engine.Close() }
