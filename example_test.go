package netalytics_test

import (
	"fmt"
	"math/rand"

	"netalytics/internal/placement"
	"netalytics/internal/query"
	"netalytics/internal/report"
	"netalytics/internal/stream"
	"netalytics/internal/topology"
)

// The query language accepts the paper's §3.3 examples verbatim and renders
// back canonically.
func Example_queryLanguage() {
	q, err := query.Parse(`PARSE tcp_conn_time, http_get
		FROM 10.0.2.8:5555 TO 10.0.2.9:80
		LIMIT 90s SAMPLE auto
		PROCESS (top-k: k=10, w=10s)`)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(q)
	fmt.Println("parsers:", q.Parsers)
	fmt.Println("limit:", q.Limit.Duration)
	// Output:
	// PARSE tcp_conn_time, http_get FROM 10.0.2.8:5555 TO 10.0.2.9:80 LIMIT 1m30s SAMPLE auto PROCESS (top-k: k=10, w=10s)
	// parsers: [tcp_conn_time http_get]
	// limit: 1m30s
}

// Placement runs standalone: given a topology and a flow set, the paper's
// Algorithm 1 & 2 heuristics decide where monitors and analytics engines go.
func Example_placement() {
	topo := topology.MustNew(4)
	topo.RandomizeResources(rand.New(rand.NewSource(1)))
	hosts := topo.Hosts()
	flows := []placement.Flow{
		{Src: hosts[0], Dst: hosts[8], Rate: 1e6},
		{Src: hosts[1], Dst: hosts[9], Rate: 1e6},
		{Src: hosts[4], Dst: hosts[12], Rate: 1e6},
	}
	p, err := placement.Place(topo, flows, placement.NetalyticsNetwork, placement.Params{}, rand.New(rand.NewSource(2)))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("monitors:", len(p.Monitors))
	fmt.Println("aggregators:", len(p.Aggregators))
	fmt.Println("every flow covered:", len(p.FlowMonitor) == len(flows))
	// Output:
	// monitors: 2
	// aggregators: 2
	// every flow covered: true
}

// The report package renders results for terminals.
func Example_report() {
	fmt.Print(report.Rankings("top pages", []stream.RankEntry{
		{Key: "/home", Count: 40},
		{Key: "/search", Count: 10},
	}))
	// Output:
	// top pages
	//    1. /home         40 ########################
	//    2. /search       10 ######
}
