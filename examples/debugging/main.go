// Debugging: the §7.1 multi-tier performance-debugging walkthrough.
//
// A proxy load-balances over two app servers backed by MySQL and Memcached.
// Clients see bimodal response times; CPU metrics look fine everywhere. Two
// NetAlytics queries localize the problem from the network alone:
//
//  1. tcp_conn_time + diff-group  → proxy→App1 is ~4x slower than proxy→App2
//
//  2. tcp_pkt_size + group-sum    → App1 sends all its backend traffic to
//     MySQL and none to the cache: a misconfiguration.
//
//     go run ./examples/debugging
package main

import (
	"fmt"
	"log"
	"time"

	"netalytics"
	"netalytics/internal/apps"
	"netalytics/internal/topology"
)

func main() {
	tb, err := netalytics.NewTestbed(netalytics.TestbedConfig{FatTreeK: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()
	net := tb.Network()
	hosts := tb.Topology().Hosts()
	proxyH, app1H, app2H, dbH, cacheH, clientH :=
		hosts[0], hosts[1], hosts[2], hosts[4], hosts[5], hosts[12]

	// Backends: a 24ms database and a 1ms cache.
	db, err := apps.StartMySQL(net, dbH, apps.MySQLConfig{DefaultCost: 24 * time.Millisecond})
	must(err)
	defer db.Stop()
	cache, err := apps.StartMemcached(net, cacheH, apps.MemcachedConfig{Cost: time.Millisecond})
	must(err)
	defer cache.Stop()

	// App Server 1 is misconfigured: its /cache route points at MySQL.
	app1, err := apps.StartApp(net, app1H, apps.AppConfig{Routes: map[string]apps.Route{
		"/db":    {Backend: apps.BackendMySQL, BackendHost: dbH, Query: "SELECT * FROM orders"},
		"/cache": {Backend: apps.BackendMySQL, BackendHost: dbH, Query: "SELECT * FROM sessions"},
	}})
	must(err)
	defer app1.Stop()
	app2, err := apps.StartApp(net, app2H, apps.AppConfig{Routes: map[string]apps.Route{
		"/db":    {Backend: apps.BackendMySQL, BackendHost: dbH, Query: "SELECT * FROM orders"},
		"/cache": {Backend: apps.BackendMemcached, BackendHost: cacheH, Query: "session"},
	}})
	must(err)
	defer app2.Stop()

	kv := apps.NewKVStore()
	kv.SetPool([]string{app1H.Name, app2H.Name})
	proxy, err := apps.StartProxy(net, proxyH, apps.ProxyConfig{Store: kv})
	must(err)
	defer proxy.Stop()

	// Step 0: the symptom. Clients see anomalous, bimodal latency.
	fmt.Println("step 0: clients report anomalous response times")
	load := apps.RunHTTPLoad(net, clientH, apps.LoadConfig{
		Requests: 150, Concurrency: 8, Target: proxyH,
		URL: func(i int) string {
			if i%5 == 0 {
				return "/db"
			}
			return "/cache"
		},
	})
	fmt.Printf("  client latency: %s\n\n", load.Latencies.Summary())

	// Step 1: per-tier response-time breakdown, no server access needed.
	fmt.Println("step 1: NetAlytics query — per-tier connection times")
	connQ := fmt.Sprintf(
		"PARSE tcp_conn_time FROM * TO %s:80, %s:80, %s:80, %s:3306, %s:11211 PROCESS (diff-group: group=ips)",
		proxyH.Name, app1H.Name, app2H.Name, dbH.Name, cacheH.Name)
	avgs := runAndCollect(tb, connQ, net, clientH, proxyH)
	edge := func(from, to *topology.Host) float64 {
		return avgs[from.Addr.String()+"->"+to.Addr.String()] / 1e6
	}
	fmt.Printf("  proxy -> app1: %6.1f ms\n", edge(proxyH, app1H))
	fmt.Printf("  proxy -> app2: %6.1f ms   <- app1 is ~%.0fx slower\n",
		edge(proxyH, app2H), edge(proxyH, app1H)/edge(proxyH, app2H))
	fmt.Printf("  app1  -> db:   %6.1f ms\n", edge(app1H, dbH))
	fmt.Printf("  app2  -> db:   %6.1f ms\n", edge(app2H, dbH))
	fmt.Printf("  app2  -> cache:%6.1f ms\n\n", edge(app2H, cacheH))

	// Step 2: where does each app server's traffic go?
	fmt.Println("step 2: NetAlytics query — per-backend traffic volume")
	sizeQ := fmt.Sprintf(
		"PARSE tcp_pkt_size FROM * TO %s:3306, %s:11211 PROCESS (group-sum: group=ips)",
		dbH.Name, cacheH.Name)
	sums := runAndCollect(tb, sizeQ, net, clientH, proxyH)
	vol := func(from, to *topology.Host) float64 {
		return (sums[from.Addr.String()+"->"+to.Addr.String()] +
			sums[to.Addr.String()+"->"+from.Addr.String()]) / 1024
	}
	fmt.Printf("  app1 -> mysql:     %7.1f KB\n", vol(app1H, dbH))
	fmt.Printf("  app1 -> memcached: %7.1f KB   <- app1 never touches the cache!\n", vol(app1H, cacheH))
	fmt.Printf("  app2 -> mysql:     %7.1f KB\n", vol(app2H, dbH))
	fmt.Printf("  app2 -> memcached: %7.1f KB\n\n", vol(app2H, cacheH))

	fmt.Println("diagnosis: App Server 1 is misconfigured — its cacheable requests")
	fmt.Println("are served by MySQL instead of Memcached (cf. paper §7.1).")
}

// runAndCollect submits a query, drives a standard load burst, stops the
// session and returns the last value per result key.
func runAndCollect(tb *netalytics.Testbed, q string, net *netalytics.Network, client, target *topology.Host) map[string]float64 {
	sess, err := tb.Submit(q)
	must(err)
	apps.RunHTTPLoad(net, client, apps.LoadConfig{
		Requests: 150, Concurrency: 8, Target: target,
		URL: func(i int) string {
			if i%5 == 0 {
				return "/db"
			}
			return "/cache"
		},
	})
	time.Sleep(300 * time.Millisecond)
	sess.Stop()
	out := map[string]float64{}
	for tu := range sess.Results() {
		out[tu.Key] = tu.Val
	}
	return out
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
