// Popularity: the §7.3 real-time popularity monitoring and automated
// resource management walkthrough.
//
// NetAlytics's top-k query watches the URLs flowing through a load-balancing
// proxy. Its rankings feed an Updater (autoscaler) that replicates popular
// content onto additional web servers when a surge hits, and the proxy —
// whose backend pool lives in a small Redis-like KV store — redistributes
// the load within seconds.
//
//	go run ./examples/popularity
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"netalytics"
	"netalytics/internal/apps"
	"netalytics/internal/topology"
	"netalytics/internal/workload"
)

func main() {
	tb, err := netalytics.NewTestbed(netalytics.TestbedConfig{FatTreeK: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()
	net := tb.Network()
	hosts := tb.Topology().Hosts()
	proxyH := hosts[0]
	serverHosts := []*topology.Host{hosts[1], hosts[2], hosts[3]}
	client1, client2 := hosts[12], hosts[13]

	// Three identical video servers; only the first is in the pool at start.
	names := make([]string, len(serverHosts))
	for i, h := range serverHosts {
		srv, err := apps.StartApp(net, h, apps.AppConfig{
			Routes: map[string]apps.Route{"/videos/": {Cost: 2 * time.Millisecond, BodySize: 512}},
		})
		must(err)
		defer srv.Stop()
		names[i] = h.Name
	}
	kv := apps.NewKVStore()
	proxy, err := apps.StartProxy(net, proxyH, apps.ProxyConfig{Store: kv})
	must(err)
	defer proxy.Stop()

	scaler := apps.NewAutoscaler(apps.AutoscalerConfig{
		Store:          kv,
		AllServers:     names,
		UpperThreshold: 40,
		LowerThreshold: 3,
		Backoff:        800 * time.Millisecond,
		Replicate: func(server string, top []netalytics.RankEntry) {
			fmt.Printf("  [updater] replicating %d hot items to %s\n", len(top), server)
		},
	})

	// The monitoring query: top-10 URLs through the proxy every 500ms.
	sess, err := tb.Submit(fmt.Sprintf(
		"PARSE http_get FROM * TO %s:80 PROCESS (top-k: k=10, w=500ms)", proxyH.Name))
	must(err)
	go func() {
		for tu := range sess.Results() {
			if entries, ok := netalytics.DecodeRankings(tu); ok {
				scaler.OnRankings(entries)
			}
		}
	}()

	fmt.Println("phase 1: moderate load over 1000 videos (one server suffices)")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		apps.RunHTTPLoad(net, client1, apps.LoadConfig{
			Requests: 450, Concurrency: 2, Gap: 8 * time.Millisecond, Target: proxyH,
			URL: func(i int) string { return workload.URL(i % 1000) },
		})
	}()
	time.Sleep(3 * time.Second)
	fmt.Printf("  active servers: %d\n\n", scaler.Active())

	fmt.Println("phase 2: a flash crowd hits 10 hot videos")
	wg.Add(1)
	go func() {
		defer wg.Done()
		apps.RunHTTPLoad(net, client2, apps.LoadConfig{
			Requests: 2400, Concurrency: 6, Gap: time.Millisecond, Target: proxyH,
			URL: func(i int) string { return workload.URL(i % 10) },
		})
	}()
	wg.Wait()
	sess.Stop()

	fmt.Println("\nscaling actions:")
	for _, a := range scaler.Actions() {
		dir := "removed a server"
		if a.Up {
			dir = "added a server"
		}
		fmt.Printf("  %s -> %d active (top frequency %.0f/window)\n", dir, a.Servers, a.TopFreq)
	}
	fmt.Println("\nrequests served per backend:")
	for name, n := range proxy.PerHost() {
		fmt.Printf("  %-10s %6d\n", name, n)
	}
	if scaler.Active() >= 2 {
		fmt.Println("\nthe surge was detected from mirrored packets and absorbed by")
		fmt.Println("dynamically replicated servers — no application involvement (§7.3).")
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
