// Quickstart: the smallest end-to-end NetAlytics deployment.
//
// It builds a 16-host testbed, starts one emulated web server, submits a
// top-k query against the server's port, drives some client traffic, and
// prints the most popular URLs — all monitored from the network, without
// instrumenting the server.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"netalytics"
	"netalytics/internal/apps"
)

func main() {
	// 1. A testbed: fat-tree topology + virtual network + SDN controller +
	//    aggregation cluster + query engine.
	tb, err := netalytics.NewTestbed(netalytics.TestbedConfig{FatTreeK: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()

	hosts := tb.Topology().Hosts()
	server, client := hosts[0], hosts[12]

	// 2. An application to monitor: a plain web server on server:80.
	web, err := apps.StartApp(tb.Network(), server, apps.AppConfig{
		Routes: map[string]apps.Route{"/": {Cost: time.Millisecond}},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer web.Stop()

	// 3. The query: watch HTTP GETs to the server, rank URLs every second,
	//    stop after five seconds.
	q := fmt.Sprintf("PARSE http_get FROM * TO %s:80 LIMIT 5s PROCESS (top-k: k=3, w=1s)", server.Name)
	sess, err := tb.Submit(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted: %s\n", q)
	fmt.Printf("deployed %d monitor(s), %d mirror rule(s)\n\n",
		sess.MonitorCount(), len(tb.Controller().QueryRules(sess.ID)))

	// 4. Traffic: a skewed URL mix — /popular gets half the requests.
	go apps.RunHTTPLoad(tb.Network(), client, apps.LoadConfig{
		Requests: 400, Concurrency: 4, Target: server,
		URL: func(i int) string {
			if i%2 == 0 {
				return "/popular"
			}
			return fmt.Sprintf("/page-%d", i%7)
		},
	})

	// 5. Results: rankings stream out as the windows roll.
	for tu := range sess.Results() {
		entries, ok := netalytics.DecodeRankings(tu)
		if !ok || len(entries) == 0 {
			continue
		}
		fmt.Print("top urls:")
		for _, e := range entries {
			fmt.Printf("  %s (%.0f)", e.Key, e.Count)
		}
		fmt.Println()
	}
	fmt.Printf("\nsession ended: %d packets inspected, %d tuples extracted\n",
		sess.Packets(), sess.MonitorStats().Tuples)
}
