// Perfanalysis: the §7.2 coordinated performance-analysis walkthrough.
//
// A PHP-like web app executes database queries of very different costs. One
// NetAlytics query combines two parsers — tcp_conn_time for timing and
// http_get for URLs — joined by flow ID, so every connection duration comes
// out labeled with its page. A second query uses the mysql parser to time
// individual SQL statements even when several share one TCP connection, and
// the run demonstrates catching a buggy page that silently skips its query.
//
//	go run ./examples/perfanalysis
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"netalytics"
	"netalytics/internal/apps"
	"netalytics/internal/metrics"
)

func main() {
	tb, err := netalytics.NewTestbed(netalytics.TestbedConfig{FatTreeK: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()
	net := tb.Network()
	hosts := tb.Topology().Hosts()
	webH, dbH, clientH := hosts[0], hosts[2], hosts[12]

	pages := map[string]struct {
		sql  string
		cost time.Duration
	}{
		"/simple.php":          {"SELECT 1", 2 * time.Millisecond},
		"/expensive-films.php": {"SELECT title FROM film WHERE rental_rate > 4", 90 * time.Millisecond},
		"/polyglot-actors.php": {"SELECT actor FROM film_actor GROUP BY lang", 250 * time.Millisecond},
		"/overdue.php":         {"SELECT * FROM rental WHERE overdue", 120 * time.Millisecond},
	}
	costs := map[string]time.Duration{}
	routes := map[string]apps.Route{}
	for url, p := range pages {
		costs[p.sql] = p.cost
		routes[url] = apps.Route{Backend: apps.BackendMySQL, BackendHost: dbH, Query: p.sql}
	}
	// The bug: this page forgets to issue its query and returns instantly.
	routes["/overdue-bug.php"] = apps.Route{
		Backend: apps.BackendMySQL, BackendHost: dbH,
		Query: "SELECT * FROM rental WHERE overdue", Broken: true,
	}

	db, err := apps.StartMySQL(net, dbH, apps.MySQLConfig{DefaultCost: 2 * time.Millisecond, Costs: costs})
	must(err)
	defer db.Stop()
	web, err := apps.StartApp(net, webH, apps.AppConfig{Routes: routes})
	must(err)
	defer web.Stop()

	// Query 1: per-page response times via the two-parser join.
	fmt.Println("query 1: PARSE tcp_conn_time, http_get ... PROCESS (diff)")
	sess, err := tb.Submit(fmt.Sprintf(
		"PARSE tcp_conn_time, http_get FROM * TO %s:80 PROCESS (diff)", webH.Name))
	must(err)

	urls := make([]string, 0, len(routes))
	for u := range routes {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	load := apps.RunHTTPLoad(net, clientH, apps.LoadConfig{
		Requests: 150, Concurrency: 6, Target: webH,
		URL: func(i int) string { return urls[i%len(urls)] },
	})
	if load.Errors > 0 {
		log.Fatalf("%d load errors", load.Errors)
	}
	time.Sleep(300 * time.Millisecond)
	sess.Stop()

	perURL := map[string]*metrics.Series{}
	for tu := range sess.Results() {
		s, ok := perURL[tu.Key]
		if !ok {
			s = &metrics.Series{}
			perURL[tu.Key] = s
		}
		s.Add(tu.Val / 1e6)
	}
	fmt.Printf("  %-26s %8s %8s %5s\n", "page", "p50 ms", "p95 ms", "n")
	for _, u := range urls {
		if s := perURL[u]; s != nil {
			fmt.Printf("  %-26s %8.1f %8.1f %5d\n", u, s.Percentile(50), s.Percentile(95), s.Len())
		}
	}
	good, bug := perURL["/overdue.php"], perURL["/overdue-bug.php"]
	if good != nil && bug != nil {
		fmt.Printf("\n  /overdue-bug.php responds %.0fx faster than /overdue.php —\n",
			good.Percentile(50)/max(bug.Percentile(50), 0.01))
		fmt.Println("  a page that cheap is not doing its work: the missing-query bug (§7.2).")
	}

	// Query 2: individual SQL statement latencies on shared connections.
	fmt.Println("\nquery 2: PARSE mysql_query ... PROCESS (passthrough)")
	sess2, err := tb.Submit(fmt.Sprintf(
		"PARSE mysql_query FROM * TO %s:3306 PROCESS (passthrough)", dbH.Name))
	must(err)
	for c := 0; c < 4; c++ {
		cli, err := apps.DialMySQL(net, clientH, dbH, 0)
		must(err)
		for _, p := range pages {
			must(cli.Query(p.sql, 5*time.Second))
		}
		cli.Close()
	}
	time.Sleep(300 * time.Millisecond)
	sess2.Stop()

	perSQL := map[string]*metrics.Series{}
	for tu := range sess2.Results() {
		s, ok := perSQL[tu.Key]
		if !ok {
			s = &metrics.Series{}
			perSQL[tu.Key] = s
		}
		s.Add(tu.Val / 1e6)
	}
	fmt.Printf("  %-50s %8s %5s\n", "statement", "p50 ms", "n")
	sqls := make([]string, 0, len(perSQL))
	for q := range perSQL {
		sqls = append(sqls, q)
	}
	sort.Strings(sqls)
	for _, q := range sqls {
		s := perSQL[q]
		display := q
		if len(display) > 48 {
			display = display[:48] + ".."
		}
		fmt.Printf("  %-50s %8.1f %5d\n", display, s.Percentile(50), s.Len())
	}
	fmt.Println("\n(the MySQL query log would capture the same data at ~20% throughput cost;")
	fmt.Println(" NetAlytics observes it from mirrored packets with zero server overhead)")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
