// Flowstats: NetFlow-style per-flow accounting with NetAlytics primitives.
//
// The tcp_flow_stats parser exports per-flow packet and byte counters when
// flows terminate (the record style of NetFlow, which the paper's related
// work contrasts against) — but deployed on demand through the same query
// path as every other NetAlytics parser, and aggregated per server by the
// streaming layer. The run also dumps the mirrored frames to a pcap file
// readable by tcpdump/wireshark.
//
//	go run ./examples/flowstats
package main

import (
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"netalytics"
	"netalytics/internal/apps"
	"netalytics/internal/pcap"
	"netalytics/internal/topology"
)

func main() {
	tb, err := netalytics.NewTestbed(netalytics.TestbedConfig{FatTreeK: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()
	net := tb.Network()
	hosts := tb.Topology().Hosts()
	web1, web2, client := hosts[0], hosts[2], hosts[12]

	for _, h := range []*topology.Host{web1, web2} {
		srv, err := apps.StartApp(net, h, apps.AppConfig{
			Routes: map[string]apps.Route{"/": {BodySize: 900}},
		})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Stop()
	}

	// Flow accounting for both servers, summed per destination.
	sess, err := tb.Submit(fmt.Sprintf(
		"PARSE tcp_flow_stats FROM * TO %s:80, %s:80 PROCESS (group-sum: group=dstIP), (passthrough)",
		web1.Name, web2.Name))
	if err != nil {
		log.Fatal(err)
	}

	// Side capture: a second tap per monitor host into a pcap file.
	pcapFile, err := os.CreateTemp("", "flowstats-*.pcap")
	if err != nil {
		log.Fatal(err)
	}
	defer pcapFile.Close()
	w, err := pcap.NewWriter(pcapFile)
	if err != nil {
		log.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, h := range sess.MonitorHosts() {
		tap := net.OpenTap(h.ID, 8192)
		defer net.CloseTap(tap)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tf := range tap.C {
				mu.Lock()
				_ = w.WritePacket(tf.TS, tf.Raw)
				mu.Unlock()
			}
		}()
	}

	// Traffic: uneven load over the two servers.
	for i, spec := range []struct {
		target *topology.Host
		n      int
	}{{web1, 60}, {web2, 20}} {
		res := apps.RunHTTPLoad(net, client, apps.LoadConfig{
			Requests: spec.n, Concurrency: 4, Target: spec.target,
			URL: func(j int) string { return fmt.Sprintf("/obj-%d-%d", i, j%9) },
		})
		if res.Errors > 0 {
			log.Fatalf("load errors: %d", res.Errors)
		}
	}
	time.Sleep(300 * time.Millisecond)
	sess.Stop()

	fmt.Println("per-server flow accounting (bytes+pkts summed per destination):")
	perDst := map[string]float64{}
	flows := 0
	for tu := range sess.Results() {
		switch tu.Key {
		case "bytes": // passthrough stream: one record per finished flow
			flows++
		default:
			if tu.DstIP == "" { // group-sum output: Key is the group
				perDst[tu.Key] = tu.Val
			}
		}
	}
	for dst, total := range perDst {
		fmt.Printf("  %-12s %8.1f KB+pkts units\n", dst, total/1024)
	}
	fmt.Printf("exported records for %d finished flows\n", flows)

	info, _ := pcapFile.Stat()
	fmt.Printf("capture: %s (%d bytes, %d frames) — open it with tcpdump -r\n",
		pcapFile.Name(), info.Size(), w.Packets())
}
