// Microservices: tracing a service graph from the network.
//
// The paper's introduction motivates NetAlytics with microservices: "a large
// application is broken into many smaller components", overwhelming
// per-process debuggers and log spelunking. This example deploys a small
// service graph —
//
//	client → frontend → auth    → memcached
//	                  → catalog → mysql
//	                  → recs    (CPU-bound)
//
// — and derives a per-edge latency map from one NetAlytics query, without
// touching a single service.
//
//	go run ./examples/microservices
package main

import (
	"fmt"
	"log"
	"time"

	"netalytics"
	"netalytics/internal/apps"
	"netalytics/internal/report"
	"netalytics/internal/topology"
)

func main() {
	tb, err := netalytics.NewTestbed(netalytics.TestbedConfig{FatTreeK: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()
	net := tb.Network()
	hosts := tb.Topology().Hosts()
	frontend, auth, catalog, recs := hosts[0], hosts[1], hosts[2], hosts[3]
	db, cache, client := hosts[4], hosts[5], hosts[12]

	// Leaf dependencies.
	mysql, err := apps.StartMySQL(net, db, apps.MySQLConfig{DefaultCost: 15 * time.Millisecond})
	must(err)
	defer mysql.Stop()
	mc, err := apps.StartMemcached(net, cache, apps.MemcachedConfig{Cost: time.Millisecond})
	must(err)
	defer mc.Stop()

	// Services.
	authSrv, err := apps.StartApp(net, auth, apps.AppConfig{Routes: map[string]apps.Route{
		"/verify": {Cost: time.Millisecond, Backend: apps.BackendMemcached, BackendHost: cache, Query: "token"},
	}})
	must(err)
	defer authSrv.Stop()
	catalogSrv, err := apps.StartApp(net, catalog, apps.AppConfig{Routes: map[string]apps.Route{
		"/items": {Cost: 2 * time.Millisecond, Backend: apps.BackendMySQL, BackendHost: db, Query: "SELECT * FROM items"},
	}})
	must(err)
	defer catalogSrv.Stop()
	recsSrv, err := apps.StartApp(net, recs, apps.AppConfig{Routes: map[string]apps.Route{
		"/suggest": {Cost: 12 * time.Millisecond}, // CPU-bound: no backend
	}})
	must(err)
	defer recsSrv.Stop()

	// The frontend fans out to all three services per request.
	frontSrv, err := apps.StartApp(net, frontend, apps.AppConfig{Routes: map[string]apps.Route{
		"/home": {Cost: time.Millisecond, Calls: []apps.BackendCall{
			{Kind: apps.BackendHTTP, Host: auth, Query: "/verify"},
			{Kind: apps.BackendHTTP, Host: catalog, Query: "/items"},
			{Kind: apps.BackendHTTP, Host: recs, Query: "/suggest"},
		}},
	}})
	must(err)
	defer frontSrv.Stop()

	// One query covers every tier of the graph.
	sess, err := tb.Submit(fmt.Sprintf(
		"PARSE tcp_conn_time FROM * TO %s:80, %s:80, %s:80, %s:80, %s:3306, %s:11211 PROCESS (diff-group: group=ips)",
		frontend.Name, auth.Name, catalog.Name, recs.Name, db.Name, cache.Name))
	must(err)

	res := apps.RunHTTPLoad(net, client, apps.LoadConfig{
		Requests: 120, Concurrency: 6, Target: frontend,
		URL: func(int) string { return "/home" },
	})
	if res.Errors > 0 {
		log.Fatalf("load errors: %d", res.Errors)
	}
	time.Sleep(300 * time.Millisecond)
	sess.Stop()

	avgs := map[string]float64{}
	for tu := range sess.Results() {
		avgs[tu.Key] = tu.Val
	}
	name := func(h *topology.Host) string {
		switch h {
		case frontend:
			return "frontend"
		case auth:
			return "auth"
		case catalog:
			return "catalog"
		case recs:
			return "recs"
		case db:
			return "mysql"
		case cache:
			return "memcached"
		case client:
			return "client"
		default:
			return h.Name
		}
	}
	edges := []struct{ from, to *topology.Host }{
		{client, frontend},
		{frontend, auth}, {frontend, catalog}, {frontend, recs},
		{auth, cache}, {catalog, db},
	}
	table := map[string]float64{}
	for _, e := range edges {
		key := e.from.Addr.String() + "->" + e.to.Addr.String()
		if v, ok := avgs[key]; ok {
			table[fmt.Sprintf("%s -> %s", name(e.from), name(e.to))] = v / 1e6
		}
	}
	fmt.Print(report.GroupTable("service-graph edge latencies (avg)", table, "ms"))
	fmt.Println()
	fmt.Println("reading the map: the client-facing latency decomposes into the three")
	fmt.Println("fan-out calls; catalog dominates because of its mysql dependency —")
	fmt.Println("found from mirrored packets alone, across six services (paper §1, §7.1).")
	fmt.Printf("client latency: %s\n", res.Latencies.Summary())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
